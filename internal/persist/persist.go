// Package persist gives subORAM partitions sealed, crash-recoverable
// durability: the enclave-external persistent state the paper's deployment
// model assumes (§2 "Data integrity", §7 sealed paging), stored by the
// untrusted host but unable to be read, tampered with, or rolled back
// without detection.
//
// A partition's on-disk state is three files plus a sealing key:
//
//	seal.key  — stands in for the hardware sealing key (in SGX, derived
//	            from MRENCLAVE; the host cannot use it). Everything below
//	            is AES-GCM sealed under it with fresh random nonces.
//	epoch.ctr — the trusted monotonic epoch counter (the ROTE / SGX
//	            counter abstraction internal/replica models). Bumped after
//	            every applied batch, before the batch is acknowledged.
//	snapshot  — the full partition at some epoch E_s: a sealed header
//	            (epoch, geometry) followed by equal-sized sealed chunks
//	            whose AAD binds (epoch, chunk index).
//	wal       — sealed fixed-size records of the batches applied since the
//	            snapshot, one or more records per epoch, each padded to a
//	            fixed row count; the AAD binds (epoch, part, last).
//
// Rollback protection: recovery loads the counter (trusted to be monotone —
// the piece real hardware provides), requires the snapshot's epoch E_s to
// not exceed it, and replays WAL records for the contiguous epoch range
// (E_s, E]. A host that serves any stale-but-validly-sealed snapshot or WAL
// prefix leaves a gap between the replayed state and the counter, and
// recovery fails with ErrRollback; splicing, reordering, or corrupting
// records fails AEAD authentication (enclave.ErrIntegrity class). Records
// past the counter are crash artifacts of an unacknowledged batch and are
// discarded, so no unacknowledged write ever surfaces after recovery.
//
// Obliviousness of the persistence path itself: every file operation's
// offset and length depend only on public parameters — partition size,
// block size, batch row count, epoch count. WAL rows are padded to a fixed
// count and carry every batch row (reads re-keyed into the dummy space
// branch-free), so the host cannot infer the read/write mix or which
// objects a batch touched from the I/O shape. internal/trace records the
// (offset, length) stream and the obliviousness tests assert it is
// bit-identical across request streams that differ only in contents.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/trace"
)

// ErrRollback is returned when recovery detects that the host presented
// stale-but-validly-sealed state: the sealed files authenticate, but they do
// not reach the epoch the trusted counter requires. It wraps
// enclave.ErrIntegrity, so errors.Is(err, enclave.ErrIntegrity) holds.
var ErrRollback = fmt.Errorf("%w: state rolled back behind the trusted epoch counter", enclave.ErrIntegrity)

// errCorrupt wraps a decode failure into the enclave.ErrIntegrity class.
func errCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", enclave.ErrIntegrity, fmt.Sprintf(format, args...))
}

// File names inside a partition directory.
const (
	sealKeyFile  = "seal.key"
	counterFile  = "epoch.ctr"
	snapshotFile = "snapshot"
	walFile      = "wal"
	routeKeyFile = "route.key"
)

// maxRecord bounds a single sealed record (64 MiB), so a corrupted length
// prefix cannot force an unbounded allocation.
const maxRecord = 64 << 20

// dir is the sealed-file substrate of one partition directory: it frames,
// seals, and traces every read and write.
type dir struct {
	path   string
	sealer *crypt.RandomSealer
	rec    *trace.Recorder // host-visible I/O trace hook (tests)

	// walRowsBuf is the reusable row-staging buffer for appendWAL; callers
	// of appendWAL are serialized (Durable.mu), so one buffer suffices.
	walRowsBuf []byte
}

// loadSealKey reads or creates the sealing key file. The file models the
// hardware sealing-key derivation: a real enclave would re-derive the key
// from its measurement, never storing it where the host can read it.
func loadSealKey(path string) (crypt.Key, error) {
	var key crypt.Key
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if len(raw) != crypt.KeySize {
			return key, errCorrupt("sealing key file %s has %d bytes, want %d", path, len(raw), crypt.KeySize)
		}
		copy(key[:], raw)
		return key, nil
	case errors.Is(err, os.ErrNotExist):
		key, err = crypt.NewKey()
		if err != nil {
			return key, err
		}
		if err := os.WriteFile(path, key[:], 0o600); err != nil {
			return key, err
		}
		return key, nil
	default:
		return key, err
	}
}

func openDir(path string, key *crypt.Key, rec *trace.Recorder) (*dir, error) {
	if err := os.MkdirAll(path, 0o700); err != nil {
		return nil, err
	}
	var k crypt.Key
	if key != nil {
		k = *key
	} else {
		var err error
		k, err = loadSealKey(filepath.Join(path, sealKeyFile))
		if err != nil {
			return nil, err
		}
	}
	sealer, err := crypt.NewRandomSealer(k)
	if err != nil {
		return nil, err
	}
	return &dir{path: path, sealer: sealer, rec: rec}, nil
}

func (d *dir) file(name string) string { return filepath.Join(d.path, name) }

// sealRecord frames one sealed record: u32 body length, then
// nonce||ciphertext||tag over the plaintext. The AAD is context||aadExtra;
// aadExtra is *not* stored — the reader re-derives it from its own state
// (e.g. the snapshot epoch and chunk index), so a record moved to a
// different position fails authentication.
func (d *dir) sealRecord(context string, aadExtra, plaintext []byte) []byte {
	return frame(nil, d.sealer.Seal(plaintext, aad(context, aadExtra)))
}

// sealPrefixed frames a sealed record that carries a public prefix the
// reader cannot derive in advance (e.g. a WAL record's epoch). The prefix
// is stored in the clear but bound through the AAD, so editing it breaks
// authentication.
func (d *dir) sealPrefixed(context string, prefix, plaintext []byte) []byte {
	return frame(prefix, d.sealer.Seal(plaintext, aad(context, prefix)))
}

func frame(prefix, ct []byte) []byte {
	rec := make([]byte, 4+len(prefix)+len(ct))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(prefix)+len(ct)))
	copy(rec[4:], prefix)
	copy(rec[4+len(prefix):], ct)
	return rec
}

func aad(context string, extra []byte) []byte {
	return append([]byte(context), extra...)
}

// recordLen returns the framed size of a sealed record with the given
// prefix and plaintext lengths — a public function of public parameters.
func recordLen(prefixLen, plaintextLen int) int {
	return 4 + prefixLen + plaintextLen + crypt.Overhead
}

// readBody reads one framed record body of the expected public geometry.
// io.EOF is returned untouched when r is exhausted before the length
// prefix; any partial read reports io.ErrUnexpectedEOF.
func readBody(r io.Reader, prefixLen, plaintextLen int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF or io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxRecord {
		return nil, errCorrupt("record of %d bytes exceeds limit", n)
	}
	want := recordLen(prefixLen, plaintextLen)
	if n != want-4 {
		return nil, errCorrupt("record body of %d bytes, want %d", n, want-4)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	return body, nil
}

// readRecord reads and opens one sealed record whose AAD extra the caller
// re-derives (see sealRecord).
func (d *dir) readRecord(r io.Reader, context string, aadExtra []byte, plaintextLen int, offset int64) ([]byte, error) {
	body, err := readBody(r, 0, plaintextLen)
	if err != nil {
		return nil, err
	}
	d.rec.Record(trace.KindFileRead, int(offset), 4+len(body))
	pt, err := d.sealer.Open(body, aad(context, aadExtra))
	if err != nil {
		return nil, errCorrupt("record authentication failed")
	}
	return pt, nil
}

// readPrefixed reads and opens one sealed record carrying a stored public
// prefix (see sealPrefixed), returning prefix and plaintext.
func (d *dir) readPrefixed(r io.Reader, context string, prefixLen, plaintextLen int, offset int64) (prefix, plaintext []byte, err error) {
	body, err := readBody(r, prefixLen, plaintextLen)
	if err != nil {
		return nil, nil, err
	}
	d.rec.Record(trace.KindFileRead, int(offset), 4+len(body))
	prefix = body[:prefixLen]
	plaintext, err = d.sealer.Open(body[prefixLen:], aad(context, prefix))
	if err != nil {
		return nil, nil, errCorrupt("record authentication failed")
	}
	return prefix, plaintext, nil
}

// writeFileAtomic writes a whole file via tmp + fsync + rename + dir fsync,
// so a crash leaves either the old or the new version, never a torn one.
func (d *dir) writeFileAtomic(name string, content []byte) error {
	tmp := d.file(name + ".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(content); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, d.file(name)); err != nil {
		return err
	}
	d.rec.Record(trace.KindFileWrite, 0, len(content))
	return d.syncDir()
}

// syncDir flushes the directory entry metadata (renames, creations).
func (d *dir) syncDir() error {
	f, err := os.Open(d.path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
