package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"snoopy/internal/store"
	"snoopy/internal/trace"
)

// AAD contexts for the snapshot records.
const (
	snapHeaderContext = "snoopy-persist/snap-header/v1"
	snapChunkContext  = "snoopy-persist/snap-chunk/v1"
)

// snapHeader is the public geometry sealed into the snapshot's first record.
type snapHeader struct {
	epoch       uint64
	n           uint64
	blockSize   uint32
	chunkBlocks uint32
}

const snapHeaderLen = 8 + 8 + 4 + 4

func (h snapHeader) marshal() []byte {
	buf := make([]byte, snapHeaderLen)
	binary.LittleEndian.PutUint64(buf[0:8], h.epoch)
	binary.LittleEndian.PutUint64(buf[8:16], h.n)
	binary.LittleEndian.PutUint32(buf[16:20], h.blockSize)
	binary.LittleEndian.PutUint32(buf[20:24], h.chunkBlocks)
	return buf
}

func unmarshalSnapHeader(buf []byte) (snapHeader, error) {
	var h snapHeader
	h.epoch = binary.LittleEndian.Uint64(buf[0:8])
	h.n = binary.LittleEndian.Uint64(buf[8:16])
	h.blockSize = binary.LittleEndian.Uint32(buf[16:20])
	h.chunkBlocks = binary.LittleEndian.Uint32(buf[20:24])
	// Authenticated fields can still be hostile when the sealing key file
	// was swapped; bound them before they size any allocation.
	if h.blockSize == 0 || h.blockSize > 1<<20 {
		return h, errCorrupt("snapshot block size %d out of range", h.blockSize)
	}
	if h.chunkBlocks == 0 || h.chunkBlocks > 1<<16 {
		return h, errCorrupt("snapshot chunk geometry %d out of range", h.chunkBlocks)
	}
	if h.n > 1<<40 || int(h.chunkBlocks)*(8+int(h.blockSize)) > maxRecord {
		return h, errCorrupt("snapshot geometry n=%d chunk=%d implausible", h.n, h.chunkBlocks)
	}
	return h, nil
}

// chunkPrefix binds a chunk to (snapshot epoch, chunk index) through the AAD.
func chunkPrefix(epoch uint64, index uint32) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint64(buf[0:8], epoch)
	binary.LittleEndian.PutUint32(buf[8:12], index)
	return buf
}

// writeSnapshot writes the full partition image at the given epoch in a
// single sequential pass: one sealed header, then ceil(n/chunkBlocks)
// equal-sized sealed chunks — an I/O shape that depends only on (n,
// blockSize, chunkBlocks). The file replaces any previous snapshot
// atomically.
func (d *dir) writeSnapshot(epoch uint64, ids []uint64, data []byte, blockSize, chunkBlocks int) error {
	n := len(ids)
	if len(data) != n*blockSize {
		return fmt.Errorf("persist: snapshot data length %d != %d objects × %d bytes", len(data), n, blockSize)
	}
	tmp := d.file(snapshotFile + ".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)

	hdr := snapHeader{epoch: epoch, n: uint64(n), blockSize: uint32(blockSize), chunkBlocks: uint32(chunkBlocks)}
	rec := d.sealRecord(snapHeaderContext, nil, hdr.marshal())
	if _, err := w.Write(rec); err != nil {
		return err
	}
	offset := int64(len(rec))
	d.rec.Record(trace.KindFileWrite, 0, len(rec))

	rowLen := 8 + blockSize
	chunk := make([]byte, chunkBlocks*rowLen)
	for base := 0; base < n; base += chunkBlocks {
		for r := 0; r < chunkBlocks; r++ {
			row := chunk[r*rowLen : (r+1)*rowLen]
			i := base + r
			if i < n {
				binary.LittleEndian.PutUint64(row[:8], ids[i])
				copy(row[8:], data[i*blockSize:(i+1)*blockSize])
			} else {
				// Pad the last chunk with dummy rows so every chunk's
				// plaintext — and therefore ciphertext — has one fixed size.
				binary.LittleEndian.PutUint64(row[:8], store.DummyKeyBit)
				clear(row[8:])
			}
		}
		rec := d.sealRecord(snapChunkContext, chunkPrefix(epoch, uint32(base/chunkBlocks)), chunk)
		if _, err := w.Write(rec); err != nil {
			return err
		}
		d.rec.Record(trace.KindFileWrite, int(offset), len(rec))
		offset += int64(len(rec))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, d.file(snapshotFile)); err != nil {
		return err
	}
	return d.syncDir()
}

// readSnapshot loads and authenticates the snapshot, returning the sealed
// epoch and partition image. os.ErrNotExist is passed through when no
// snapshot has ever been written.
func (d *dir) readSnapshot() (epoch uint64, ids []uint64, data []byte, blockSize int, err error) {
	f, err := os.Open(d.file(snapshotFile))
	if err != nil {
		return 0, nil, nil, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)

	pt, err := d.readRecord(r, snapHeaderContext, nil, snapHeaderLen, 0)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, nil, 0, errCorrupt("snapshot header truncated")
		}
		return 0, nil, nil, 0, err
	}
	hdr, err := unmarshalSnapHeader(pt)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	offset := int64(recordLen(0, snapHeaderLen))

	n := int(hdr.n)
	blockSize = int(hdr.blockSize)
	chunkBlocks := int(hdr.chunkBlocks)
	rowLen := 8 + blockSize
	ids = make([]uint64, 0, n)
	data = make([]byte, 0, n*blockSize)
	chunks := (n + chunkBlocks - 1) / chunkBlocks
	for c := 0; c < chunks; c++ {
		chunk, err := d.readRecord(r, snapChunkContext, chunkPrefix(hdr.epoch, uint32(c)), chunkBlocks*rowLen, offset)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return 0, nil, nil, 0, errCorrupt("snapshot chunk %d truncated", c)
			}
			return 0, nil, nil, 0, err
		}
		offset += int64(recordLen(0, chunkBlocks*rowLen))
		for rI := 0; rI < chunkBlocks && len(ids) < n; rI++ {
			row := chunk[rI*rowLen : (rI+1)*rowLen]
			id := binary.LittleEndian.Uint64(row[:8])
			if store.IsDummyKey(id) {
				return 0, nil, nil, 0, errCorrupt("snapshot chunk %d carries a dummy id before row %d", c, n)
			}
			ids = append(ids, id)
			data = append(data, row[8:]...)
		}
	}
	return hdr.epoch, ids, data, blockSize, nil
}
