package persist

import (
	"errors"
	"io"
	"os"

	"snoopy/internal/crypt"
)

// routeContext is the AAD context for the sealed routing key record.
const routeContext = "snoopy-persist/route-key/v1"

// LoadOrCreateRoutingKey returns the deployment's oblivious routing key —
// the keyed-hash secret that assigns objects to subORAM partitions (§4.1).
// It is sealed at DataDir/route.key under the deployment sealing key: a
// reopened deployment must route each key to the partition that persisted
// it, and the host must not learn the assignment function.
func LoadOrCreateRoutingKey(dataDir string) (crypt.Key, error) {
	var key crypt.Key
	d, err := openDir(dataDir, nil, nil)
	if err != nil {
		return key, err
	}
	f, err := os.Open(d.file(routeKeyFile))
	switch {
	case err == nil:
		defer f.Close()
		pt, err := d.readRecord(f, routeContext, nil, crypt.KeySize, 0)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return key, errCorrupt("routing key file truncated")
			}
			return key, err
		}
		copy(key[:], pt)
		return key, nil
	case errors.Is(err, os.ErrNotExist):
		key, err = crypt.NewKey()
		if err != nil {
			return key, err
		}
		if err := d.writeFileAtomic(routeKeyFile, d.sealRecord(routeContext, nil, key[:])); err != nil {
			return key, err
		}
		return key, nil
	default:
		return key, err
	}
}
