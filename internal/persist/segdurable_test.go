package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"snoopy/internal/enclave"
	"snoopy/internal/segstore"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

const segTestBlock = 32

func segTestCfg() SegConfig {
	return SegConfig{BlockSize: segTestBlock, SegmentBlocks: 4, WALRows: 8}
}

func segBuild(ss *segstore.Store) StorePartition {
	return suboram.New(suboram.Config{BlockSize: segTestBlock, Store: ss})
}

func segValue(id uint64, version int) []byte {
	b := make([]byte, segTestBlock)
	binary.LittleEndian.PutUint64(b, id)
	binary.LittleEndian.PutUint64(b[8:], uint64(version))
	return b
}

func newSegInited(t *testing.T, path string, n int) *SegDurable {
	t.Helper()
	sd, err := NewSegDurable(path, segBuild, segTestCfg())
	if err != nil {
		t.Fatalf("NewSegDurable: %v", err)
	}
	ids := make([]uint64, n)
	data := make([]byte, n*segTestBlock)
	for i := 0; i < n; i++ {
		ids[i] = uint64(i * 3)
		copy(data[i*segTestBlock:], segValue(ids[i], 0))
	}
	if err := sd.Init(ids, data); err != nil {
		t.Fatalf("Init: %v", err)
	}
	return sd
}

func segWrite(t *testing.T, sd *SegDurable, id uint64, version int) {
	t.Helper()
	reqs := store.NewRequests(1, segTestBlock)
	reqs.SetRow(0, store.OpWrite, id, 0, 0, 0, segValue(id, version))
	if _, err := sd.BatchAccess(reqs); err != nil {
		t.Fatalf("write batch: %v", err)
	}
}

func segRead(t *testing.T, sd *SegDurable, id uint64) []byte {
	t.Helper()
	reqs := store.NewRequests(1, segTestBlock)
	reqs.SetRow(0, store.OpRead, id, 0, 0, 0, nil)
	out, err := sd.BatchAccess(reqs)
	if err != nil {
		t.Fatalf("read batch: %v", err)
	}
	return append([]byte(nil), out.Block(0)...)
}

func TestSegDurableRecoverAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	sd := newSegInited(t, dir, 20) // 5 segments
	segWrite(t, sd, 6, 1)
	segWrite(t, sd, 9, 2)
	if got := sd.Epoch(); got != 2 {
		t.Fatalf("epoch %d after two batches", got)
	}
	sd.Close()

	sd2, err := NewSegDurable(dir, segBuild, segTestCfg())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer sd2.Close()
	if !sd2.Recovered() {
		t.Fatal("reopen did not recover")
	}
	if sd2.RolledForward() {
		t.Fatal("clean shutdown should not roll forward")
	}
	if !bytes.Equal(segRead(t, sd2, 6), segValue(6, 1)) {
		t.Fatal("write to 6 lost across reopen")
	}
	if !bytes.Equal(segRead(t, sd2, 9), segValue(9, 2)) {
		t.Fatal("write to 9 lost across reopen")
	}
	if !bytes.Equal(segRead(t, sd2, 0), segValue(0, 0)) {
		t.Fatal("initial value of 0 corrupted")
	}
}

// TestSegDurableRollForwardFromWAL simulates a crash after the redo record
// became durable but before any segment commit: the reopened partition must
// apply the logged batch and acknowledge it.
func TestSegDurableRollForwardFromWAL(t *testing.T) {
	dir := t.TempDir()
	sd := newSegInited(t, dir, 20)
	segWrite(t, sd, 6, 1)
	epoch := sd.Epoch()
	// Craft the crash artifact: a complete WAL record set for epoch+1
	// containing a write to id 9, fsynced, with no segment-store changes.
	reqs := store.NewRequests(2, segTestBlock)
	reqs.SetRow(0, store.OpWrite, 9, 0, 0, 0, segValue(9, 7))
	reqs.SetRow(1, store.OpRead, 6, 0, 1, 1, nil)
	sd.mu.Lock()
	if err := sd.wal.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.wal.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	sd.walSize = 0
	if err := sd.d.appendWAL(sd.wal, &sd.walSize, epoch+1, reqs, sd.cfg.WALRows, segTestBlock); err != nil {
		t.Fatal(err)
	}
	if err := sd.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	sd.mu.Unlock()
	sd.Close() // "crash": scan never ran, registry still at epoch

	sd2, err := NewSegDurable(dir, segBuild, segTestCfg())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer sd2.Close()
	if !sd2.RolledForward() {
		t.Fatal("logged batch was not rolled forward")
	}
	if got := sd2.Epoch(); got != epoch+1 {
		t.Fatalf("epoch %d after roll-forward, want %d", got, epoch+1)
	}
	if !bytes.Equal(segRead(t, sd2, 9), segValue(9, 7)) {
		t.Fatal("rolled-forward write to 9 missing")
	}
	if !bytes.Equal(segRead(t, sd2, 6), segValue(6, 1)) {
		t.Fatal("pre-crash write to 6 lost")
	}
}

// TestSegDurableCommitBeforeCounterCrash simulates a crash between the
// registry commit and the counter increment: the store is one epoch ahead
// and recovery must verify it and acknowledge.
func TestSegDurableCommitBeforeCounterCrash(t *testing.T) {
	dir := t.TempDir()
	sd := newSegInited(t, dir, 20)
	segWrite(t, sd, 6, 1)
	epoch := sd.Epoch()
	// Advance the segment store one epoch behind the persistence layer's
	// back (contents unchanged), leaving the counter at epoch.
	ss := sd.Store()
	ss.BeginEpoch(epoch + 1)
	if err := ss.Rewrite(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := ss.Commit(); err != nil {
		t.Fatal(err)
	}
	sd.Close()

	sd2, err := NewSegDurable(dir, segBuild, segTestCfg())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer sd2.Close()
	if got := sd2.Epoch(); got != epoch+1 {
		t.Fatalf("epoch %d, want %d (committed epoch acknowledged)", got, epoch+1)
	}
	if !sd2.RolledForward() {
		t.Fatal("committed-but-unacknowledged epoch not reported as rolled forward")
	}
	if !bytes.Equal(segRead(t, sd2, 6), segValue(6, 1)) {
		t.Fatal("contents lost")
	}
}

// TestSegDurableDirectoryRollbackDetected restores a stale copy of the
// whole partition directory minus the counter — the classic rollback attack
// — and expects recovery to refuse.
func TestSegDurableDirectoryRollbackDetected(t *testing.T) {
	dir := t.TempDir()
	sd := newSegInited(t, dir, 20)
	segWrite(t, sd, 6, 1)
	// Snapshot the sealed state (registry + segments + wal + ids), then
	// advance two more epochs.
	stale := map[string][]byte{}
	for _, name := range []string{
		filepath.Join(segStoreDir, "registry"),
		walFile,
		segIDsFile,
	} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		stale[name] = b
	}
	segDataName := ""
	entries, _ := os.ReadDir(filepath.Join(dir, segStoreDir))
	for _, e := range entries {
		if e.Name() != "registry" {
			segDataName = filepath.Join(segStoreDir, e.Name())
			b, err := os.ReadFile(filepath.Join(dir, segDataName))
			if err != nil {
				t.Fatal(err)
			}
			stale[segDataName] = b
		}
	}
	if segDataName == "" {
		t.Fatal("no segment data file found")
	}
	segWrite(t, sd, 9, 2)
	segWrite(t, sd, 12, 3)
	sd.Close()
	for name, b := range stale {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	_, err := NewSegDurable(dir, segBuild, segTestCfg())
	if !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("rolled-back directory accepted: %v", err)
	}
}

func TestSegDurableTamperedIDsFailClosed(t *testing.T) {
	dir := t.TempDir()
	sd := newSegInited(t, dir, 20)
	segWrite(t, sd, 6, 1)
	sd.Close()
	path := filepath.Join(dir, segIDsFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x08
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = NewSegDurable(dir, segBuild, segTestCfg())
	if !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("tampered ids accepted: %v", err)
	}
}

// TestSegDurableTornWALIgnored truncates the redo log mid-record: the
// logged batch was never acknowledged, so recovery must come up clean at
// the counter epoch rather than fail.
func TestSegDurableTornWALIgnored(t *testing.T) {
	dir := t.TempDir()
	sd := newSegInited(t, dir, 20)
	segWrite(t, sd, 6, 1)
	epoch := sd.Epoch()
	sd.Close()
	// The WAL still holds the applied record of the last batch; tear it.
	path := filepath.Join(dir, walFile)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	sd2, err := NewSegDurable(dir, segBuild, segTestCfg())
	if err != nil {
		t.Fatalf("reopen with torn WAL: %v", err)
	}
	defer sd2.Close()
	if got := sd2.Epoch(); got != epoch {
		t.Fatalf("epoch %d, want %d", got, epoch)
	}
	if !bytes.Equal(segRead(t, sd2, 6), segValue(6, 1)) {
		t.Fatal("acknowledged write lost")
	}
}
