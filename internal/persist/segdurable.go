package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"snoopy/internal/crypt"
	"snoopy/internal/segstore"
	"snoopy/internal/store"
	"snoopy/internal/telemetry"
	"snoopy/internal/trace"
	"snoopy/internal/wirecode"
)

// SegDurable is the disk-resident counterpart of Durable: it wraps a
// store-backed partition (internal/suboram with a segstore.Store) whose
// block values live on disk, so the segment store itself is the durable
// state image and no separate snapshot file exists. What remains under the
// persistence layer's control:
//
//	seal.key  — the sealing key, shared with the segment store.
//	epoch.ctr — the trusted monotonic counter anchoring freshness.
//	ids       — the sealed object-identifier set (immutable after Init),
//	            AAD-bound to the epoch recorded in the segment registry.
//	wal       — a one-batch redo log (see below).
//	segments/ — the segstore directory: sealed registry + slot data.
//
// Logging discipline: Durable logs a batch AFTER applying it to the
// memory-resident partition, because a crash loses the in-memory effects
// anyway. A disk-mutating scan inverts the requirement — once segment slots
// start changing, a crash must be able to finish the batch, so SegDurable
// writes the batch's WAL record and fsyncs BEFORE the scan touches disk
// (redo logging). The scan then writes each segment into the inactive
// epoch-parity slot, the registry commit publishes the new epoch atomically,
// and the trusted counter acknowledges it. A crash at any point leaves
// either (a) the old epoch intact with a logged-but-unapplied batch —
// recovery re-derives the new epoch from old slots + WAL rows, an idempotent
// absolute-write replay — or (b) the new epoch committed with the counter
// one behind — recovery verifies and bumps the counter.
//
// Because the log only ever needs the single in-flight batch, it is
// truncated at the start of every BatchAccess rather than compacted by
// snapshots; WAL records keep Durable's fixed-shape row format (reads
// re-keyed into dummy space branch-free), so the host learns nothing about
// the batch's read/write mix from either log or segment I/O.
type SegDurable struct {
	cfg   SegConfig
	inner StorePartition
	d     *dir
	ctr   *FileCounter
	ss    *segstore.Store

	mu        sync.Mutex
	wal       *os.File
	walSize   int64
	recovered bool
	rolledFwd bool // recovery completed a logged-but-uncommitted batch

	telWALAppend *telemetry.Histogram
	telCommits   *telemetry.Counter
	telRollFwd   *telemetry.Counter
}

// StorePartition is the partition surface SegDurable wraps: the usual
// Partition contract plus the adopt-the-store recovery hook (satisfied by
// *suboram.SubORAM configured with a Store).
type StorePartition interface {
	Partition
	RestoreFromStore(ids []uint64) error
}

// SegConfig tunes a SegDurable wrapper. The zero value works.
type SegConfig struct {
	// BlockSize is the object value size in bytes (default 160).
	BlockSize int
	// SegmentBlocks is the segment geometry in blocks (default 512); the
	// streaming scan buffer is one segment. Public parameter.
	SegmentBlocks int
	// WALRows is the fixed row count of a sealed WAL record (default 512),
	// exactly as in Config.
	WALRows int
	// Key overrides the sealing key; nil loads/creates seal.key in the
	// partition directory.
	Key *crypt.Key
	// Rec, when non-nil, records the host-visible I/O trace (WAL and
	// segment I/O) for the obliviousness tests.
	Rec *trace.Recorder
	// Telemetry, when non-nil, records WAL-append latency, commit and
	// roll-forward counters, and (through the segment store) segment
	// read/write bytes and scan spans.
	Telemetry *telemetry.Registry
}

func (c *SegConfig) fillDefaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = 160
	}
	if c.SegmentBlocks <= 0 {
		c.SegmentBlocks = 512
	}
	if c.WALRows <= 0 {
		c.WALRows = 512
	}
}

// Segment-store subdirectory and sealed ids file names.
const (
	segStoreDir = "segments"
	segIDsFile  = "ids"
)

// segIDsContext is the AAD context for the sealed identifier set. The AAD
// extra binds the epoch the registry records for the ids image, so a stale
// ids file cannot be paired with a newer store.
const segIDsContext = "snoopy-persist/segids/v1"

// NewSegDurable opens (or creates) a disk-resident partition directory and
// wraps the partition that build constructs over its segment store. The
// two-step construction exists because the partition needs the store at
// creation time (scan plumbing) while the store's key and recovery belong
// here: build is called exactly once, before any recovery, and must return
// a partition configured to scan the given store.
//
// When the directory holds state, it is recovered: the registry and every
// segment are authenticated and checked against the trusted counter (stale
// state fails with ErrRollback / segstore.ErrSegmentRollback), a logged but
// uncommitted batch is rolled forward, and the identifier set is loaded
// into the partition. A process killed at any point resumes at — or, for a
// batch whose redo record was already durable, just after — its last
// acknowledged batch.
func NewSegDurable(path string, build func(ss *segstore.Store) StorePartition, cfg SegConfig) (*SegDurable, error) {
	cfg.fillDefaults()
	if err := os.MkdirAll(path, 0o700); err != nil {
		return nil, err
	}
	key := cfg.Key
	if key == nil {
		k, err := loadSealKey(filepath.Join(path, sealKeyFile))
		if err != nil {
			return nil, err
		}
		key = &k
	}
	d, err := openDir(path, key, cfg.Rec)
	if err != nil {
		return nil, err
	}
	ctr, counterExisted, err := openCounter(d)
	if err != nil {
		return nil, err
	}
	ss, err := segstore.Open(filepath.Join(path, segStoreDir), segstore.Options{
		BlockSize:     cfg.BlockSize,
		SegmentBlocks: cfg.SegmentBlocks,
		Key:           *key,
		Rec:           cfg.Rec,
		Telemetry:     cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	sd := &SegDurable{
		cfg: cfg, inner: build(ss), d: d, ctr: ctr, ss: ss,
		telWALAppend: cfg.Telemetry.Histogram("persist_wal_append", nil),
		telCommits:   cfg.Telemetry.Counter("persist_seg_commits_total"),
		telRollFwd:   cfg.Telemetry.Counter("persist_seg_rollforward_total"),
	}
	if err := sd.recover(counterExisted); err != nil {
		return nil, err
	}
	return sd, nil
}

// recover brings the store, counter, and partition into agreement.
func (sd *SegDurable) recover(counterExisted bool) error {
	epoch := sd.ctr.Current()
	if !sd.ss.Formatted() {
		// No registry: legitimate only for a partition that never completed
		// an Init — the counter must still be at zero and no sealed state
		// may be lying around claiming otherwise.
		if counterExisted && epoch != 0 {
			return fmt.Errorf("%w (no segment registry, counter at epoch %d)", ErrRollback, epoch)
		}
		if _, err := os.Stat(sd.d.file(segIDsFile)); err == nil {
			return errCorrupt("sealed identifier set present without a segment registry")
		}
		if st, err := os.Stat(sd.d.file(walFile)); err == nil && st.Size() != 0 {
			return errCorrupt("write-ahead log present without a segment registry")
		}
		return sd.openWAL()
	}

	// The registry authenticated at open; anchor its freshness. At most one
	// batch can be ahead of the counter (the redo-logged in-flight one).
	if err := sd.ss.RequireEpoch(epoch, epoch+1); err != nil {
		return err
	}
	ids, err := sd.readIDs()
	if err != nil {
		return err
	}
	walEpoch, rows, complete, err := sd.d.collectWAL(sd.d.file(walFile), sd.cfg.WALRows, sd.cfg.BlockSize)
	if err != nil {
		return err
	}
	switch storeEpoch := sd.ss.Epoch(); {
	case storeEpoch == epoch+1:
		// Crash between the registry commit and the counter increment: the
		// batch is fully applied and its redo record was durable before any
		// slot changed, so acknowledge it. Authenticate every segment first —
		// the pass also surfaces per-segment rollback.
		if err := sd.ss.Verify(0, sd.ss.NumBlocks(), nil); err != nil {
			return err
		}
		sd.ctr.Increment()
		if err := sd.ctr.Err(); err != nil {
			return err
		}
		sd.rolledFwd = true
		sd.telRollFwd.Inc()
	case complete && walEpoch == epoch+1:
		// Crash after the redo record became durable but before the registry
		// commit: the previous epoch's slots are intact (the scan writes the
		// other parity slot), so re-derive the new epoch from them plus the
		// logged rows — an idempotent absolute-write replay, streamed with
		// the same fixed whole-store I/O shape as any scan. The replay
		// authenticates every segment as it goes.
		if err := sd.rollForward(ids, rows, epoch+1); err != nil {
			return err
		}
		sd.rolledFwd = true
		sd.telRollFwd.Inc()
	default:
		// Consistent at the counter (any WAL content is a previous epoch's
		// applied record or an unacknowledged torn tail — both discardable).
		// Authenticate the full store before serving.
		if err := sd.ss.Verify(0, sd.ss.NumBlocks(), nil); err != nil {
			return err
		}
	}
	if err := sd.inner.RestoreFromStore(ids); err != nil {
		return err
	}
	sd.recovered = true
	return sd.openWAL()
}

// rollForward completes a logged-but-uncommitted batch: rows are the
// concatenated fixed-shape WAL rows of epoch next; write rows are applied as
// absolute values over the previous epoch's slots and the result committed
// and acknowledged. Rows for dummy keys (including re-keyed reads) and
// unknown keys are skipped — matching batch semantics — inside the enclave;
// the host observes only the fixed full-store streaming pass.
func (sd *SegDurable) rollForward(ids []uint64, rows []byte, next uint64) error {
	index := make(map[uint64]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	rowLen := wirecode.KVRowLen(sd.cfg.BlockSize)
	pending := make(map[int][]byte)
	for r := 0; r*rowLen < len(rows); r++ {
		row := rows[r*rowLen : (r+1)*rowLen]
		key := wirecode.KVRowKey(row)
		if store.IsDummyKey(key) {
			continue
		}
		if i, ok := index[key]; ok {
			pending[i] = wirecode.KVRowValue(row)
		}
	}
	sd.ss.BeginEpoch(next)
	if err := sd.ss.Rewrite(func(i int, blk []byte) {
		if v, ok := pending[i]; ok {
			copy(blk, v)
		}
	}); err != nil {
		return err
	}
	if err := sd.ss.Commit(); err != nil {
		return err
	}
	sd.ctr.Increment()
	return sd.ctr.Err()
}

// openWAL opens the redo-log append handle, discarding any previous
// contents (every record is either applied or unacknowledged by now).
func (sd *SegDurable) openWAL() error {
	f, err := os.OpenFile(sd.d.file(walFile), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	sd.wal = f
	sd.walSize = 0
	return nil
}

// readIDs loads the sealed identifier set, authenticated against the epoch
// the segment registry records for it.
func (sd *SegDurable) readIDs() ([]uint64, error) {
	f, err := os.Open(sd.d.file(segIDsFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, errCorrupt("segment registry present without a sealed identifier set")
		}
		return nil, err
	}
	defer f.Close()
	n := sd.ss.NumBlocks()
	var aadExtra [8]byte
	binary.LittleEndian.PutUint64(aadExtra[:], sd.ss.IDsEpoch())
	pt, err := sd.d.readRecord(f, segIDsContext, aadExtra[:], 8*n, 0)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, errCorrupt("sealed identifier set truncated")
		}
		return nil, err
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint64(pt[i*8 : (i+1)*8])
	}
	return ids, nil
}

// writeIDsLocked seals and atomically writes the identifier set, bound to
// the given epoch. Caller holds mu.
func (sd *SegDurable) writeIDsLocked(ids []uint64, epoch uint64) error {
	pt := make([]byte, 8*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(pt[i*8:(i+1)*8], id)
	}
	var aadExtra [8]byte
	binary.LittleEndian.PutUint64(aadExtra[:], epoch)
	return sd.d.writeFileAtomic(segIDsFile, sd.d.sealRecord(segIDsContext, aadExtra[:], pt))
}

// Recovered reports whether the directory held state that was restored.
func (sd *SegDurable) Recovered() bool {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.recovered
}

// RolledForward reports whether recovery completed a batch whose redo
// record was durable but whose commit (or acknowledgment) the crash
// interrupted.
func (sd *SegDurable) RolledForward() bool {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.rolledFwd
}

// Epoch returns the trusted counter: the number of acknowledged batches.
func (sd *SegDurable) Epoch() uint64 { return sd.ctr.Current() }

// Counter exposes the trusted monotonic counter (replication wiring).
func (sd *SegDurable) Counter() *FileCounter { return sd.ctr }

// Store exposes the underlying segment store (benchmarks, tests).
func (sd *SegDurable) Store() *segstore.Store { return sd.ss }

// Init loads the partition: the store is formatted and streamed full at the
// current epoch, the identifier set sealed beside it, and everything made
// durable before Init returns. Init is not crash-atomic the way a batch is —
// nothing is acknowledged until Init returns, so a crash mid-Init can leave
// a partition that fails recovery closed and must be wiped and
// re-initialized; no acknowledged state is ever at risk.
func (sd *SegDurable) Init(ids []uint64, data []byte) error {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.initLocked(ids, data, false)
}

func (sd *SegDurable) initLocked(ids []uint64, data []byte, restore bool) error {
	epoch := sd.ctr.Current()
	sd.ss.BeginEpoch(epoch)
	var err error
	if restore {
		if r, ok := sd.inner.(restorer); ok {
			err = r.Restore(ids, data)
		} else {
			err = sd.inner.Init(ids, data)
		}
	} else {
		err = sd.inner.Init(ids, data)
	}
	if err != nil {
		return err
	}
	if err := sd.writeIDsLocked(ids, epoch); err != nil {
		return err
	}
	if err := sd.ss.Commit(); err != nil {
		return err
	}
	if err := sd.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := sd.wal.Seek(0, 0); err != nil {
		return err
	}
	sd.d.rec.Record(trace.KindFileWrite, 0, 0) // WAL reset, shape-only event
	sd.walSize = 0
	return nil
}

// BatchAccess applies one batch with redo durability: the batch's sealed
// WAL record is fsynced before the scan mutates any slot, the scan streams
// the partition into the new epoch's parity slots, the registry commit
// publishes them, and the trusted counter acknowledges the epoch — only
// then is the response released.
func (sd *SegDurable) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	if reqs.BlockSize != sd.cfg.BlockSize {
		return nil, fmt.Errorf("persist: batch block size %d != %d", reqs.BlockSize, sd.cfg.BlockSize)
	}
	if err := sd.ctr.Err(); err != nil {
		return nil, fmt.Errorf("persist: epoch counter lost durability: %w", err)
	}
	// Drop the previous batch's (already applied) record; the log holds at
	// most the one in-flight batch.
	if err := sd.wal.Truncate(0); err != nil {
		return nil, err
	}
	if _, err := sd.wal.Seek(0, 0); err != nil {
		return nil, err
	}
	sd.d.rec.Record(trace.KindFileWrite, 0, 0) // WAL reset, shape-only event
	sd.walSize = 0

	epoch := sd.ctr.Current() + 1
	tw0 := sd.cfg.Telemetry.Now()
	if err := sd.d.appendWAL(sd.wal, &sd.walSize, epoch, reqs, sd.cfg.WALRows, sd.cfg.BlockSize); err != nil {
		return nil, err
	}
	if err := sd.wal.Sync(); err != nil {
		return nil, err
	}
	sd.telWALAppend.Observe(time.Duration(sd.cfg.Telemetry.Now() - tw0))

	sd.ss.BeginEpoch(epoch)
	out, err := sd.inner.BatchAccess(reqs)
	if err != nil {
		return nil, err
	}
	if err := sd.ss.Commit(); err != nil {
		return nil, err
	}
	sd.ctr.Increment()
	if err := sd.ctr.Err(); err != nil {
		return nil, fmt.Errorf("persist: epoch counter lost durability: %w", err)
	}
	sd.telCommits.Inc()
	return out, nil
}

// Export passes through to the wrapped partition.
func (sd *SegDurable) Export() (ids []uint64, data []byte, err error) {
	return sd.inner.Export()
}

// Restore imports a trusted state image (replica resynchronization),
// replacing the on-disk partition under the current epoch.
func (sd *SegDurable) Restore(ids []uint64, data []byte) error {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.initLocked(ids, data, true)
}

// Close releases the WAL handle and the segment store's data file.
// Acknowledged state remains recoverable; Close is not required for
// durability (kill -9 is the normal shutdown model).
func (sd *SegDurable) Close() error {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	var first error
	if sd.wal != nil {
		first = sd.wal.Close()
		sd.wal = nil
	}
	if err := sd.ss.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
