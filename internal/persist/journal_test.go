package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"snoopy/internal/enclave"
	"snoopy/internal/store"
)

// testEpochRec builds a shape-realistic epoch record: L planes, S
// partitions, F feeds, α rows per partition, R requests per feed.
func testEpochRec(epoch uint64, L, S, F, alpha, R, blockSize int) *JournalEpoch {
	e := &JournalEpoch{
		Epoch:     epoch,
		BlockSize: blockSize,
		ACLOK:     true,
		Tags:      make([]JournalTag, S),
		Planes:    make([]JournalPlane, L),
	}
	for s := range e.Tags {
		e.Tags[s] = JournalTag{LBID: 0x1000 + uint64(s), Seq: epoch * 7}
	}
	for i := range e.Planes {
		p := &e.Planes[i]
		p.OK = true
		p.PerSub = alpha
		p.Batch = store.NewRequests(alpha*S, blockSize)
		for j := 0; j < p.Batch.Len(); j++ {
			p.Batch.SetRow(j, 1, epoch*1000+uint64(j), uint32(j/alpha), uint64(j), uint64(j), nil)
		}
		p.Dropped = []uint64{epoch + 1}
		p.Feeds = make([]JournalFeed, F)
		for f := range p.Feeds {
			fd := &p.Feeds[f]
			fd.OK = true
			fd.Reqs = store.NewRequests(R, blockSize)
			fd.IDs = make([]uint64, R)
			for j := 0; j < R; j++ {
				fd.Reqs.SetRow(j, 2, epoch*500+uint64(j), 0, uint64(j), uint64(j), []byte("v"))
				fd.IDs[j] = epoch<<20 | uint64(f)<<10 | uint64(j)
			}
			fd.Denied = make([]uint8, R)
			if R > 1 {
				fd.Denied[1] = 1
			}
		}
	}
	return e
}

func sameEpochRec(t *testing.T, got, want *JournalEpoch) {
	t.Helper()
	if got.Epoch != want.Epoch || got.BlockSize != want.BlockSize || got.ACLOK != want.ACLOK {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if len(got.Tags) != len(want.Tags) {
		t.Fatalf("tags: got %d want %d", len(got.Tags), len(want.Tags))
	}
	for s := range got.Tags {
		if got.Tags[s] != want.Tags[s] {
			t.Fatalf("tag %d: got %+v want %+v", s, got.Tags[s], want.Tags[s])
		}
	}
	if len(got.Planes) != len(want.Planes) {
		t.Fatalf("planes: got %d want %d", len(got.Planes), len(want.Planes))
	}
	for i := range got.Planes {
		gp, wp := &got.Planes[i], &want.Planes[i]
		if gp.OK != wp.OK || gp.PerSub != wp.PerSub {
			t.Fatalf("plane %d header mismatch", i)
		}
		if gp.Batch.Len() != wp.Batch.Len() {
			t.Fatalf("plane %d batch len: got %d want %d", i, gp.Batch.Len(), wp.Batch.Len())
		}
		for j := 0; j < gp.Batch.Len(); j++ {
			if gp.Batch.Key[j] != wp.Batch.Key[j] || gp.Batch.Op[j] != wp.Batch.Op[j] {
				t.Fatalf("plane %d batch row %d mismatch", i, j)
			}
		}
		for f := range gp.Feeds {
			gf, wf := &gp.Feeds[f], &wp.Feeds[f]
			if gf.OK != wf.OK || gf.Reqs.Len() != wf.Reqs.Len() || len(gf.IDs) != len(wf.IDs) {
				t.Fatalf("plane %d feed %d shape mismatch", i, f)
			}
			for j := range gf.IDs {
				if gf.IDs[j] != wf.IDs[j] || gf.Reqs.Key[j] != wf.Reqs.Key[j] {
					t.Fatalf("plane %d feed %d row %d mismatch", i, f, j)
				}
			}
			if (gf.Denied == nil) != (wf.Denied == nil) {
				t.Fatalf("plane %d feed %d denied mask presence mismatch", i, f)
			}
			for j := range gf.Denied {
				if gf.Denied[j] != wf.Denied[j] {
					t.Fatalf("plane %d feed %d denied %d mismatch", i, f, j)
				}
			}
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, pending, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 || j.LastEpoch() != 0 {
		t.Fatalf("fresh journal: pending=%d last=%d", len(pending), j.LastEpoch())
	}
	e1 := testEpochRec(1, 2, 3, 2, 4, 5, testBlock)
	e2 := testEpochRec(2, 2, 3, 2, 4, 5, testBlock)
	if err := j.Begin(e1); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(e2); err != nil {
		t.Fatal(err)
	}
	if err := j.Complete(1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, pending, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.LastEpoch() != 2 {
		t.Fatalf("LastEpoch = %d, want 2", j2.LastEpoch())
	}
	if len(pending) != 1 {
		t.Fatalf("pending = %d epochs, want 1 (epoch 2)", len(pending))
	}
	sameEpochRec(t, pending[0], e2)
	pending[0].Release()
}

func TestJournalOutOfOrderBegin(t *testing.T) {
	j, _, err := OpenJournal(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Begin(testEpochRec(5, 1, 1, 1, 2, 2, testBlock)); err == nil {
		t.Fatal("Begin(5) on a fresh journal should fail (want epoch 1)")
	}
}

func TestJournalRollbackDetection(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(testEpochRec(1, 1, 2, 1, 2, 3, testBlock)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	t.Run("deleted file", func(t *testing.T) {
		// Host deletes the journal but the trusted counter says epoch 1 was
		// acknowledged.
		tmp := filepath.Join(dir, journalFile+".save")
		if err := os.Rename(filepath.Join(dir, journalFile), tmp); err != nil {
			t.Fatal(err)
		}
		_, _, err := OpenJournal(dir, nil)
		if !errors.Is(err, ErrRollback) {
			t.Fatalf("deleted journal: err = %v, want ErrRollback", err)
		}
		if err := os.Rename(tmp, filepath.Join(dir, journalFile)); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("truncated to empty", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, journalFile))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, journalFile), nil, 0o600); err != nil {
			t.Fatal(err)
		}
		_, _, err = OpenJournal(dir, nil)
		if !errors.Is(err, ErrRollback) {
			t.Fatalf("truncated journal: err = %v, want ErrRollback", err)
		}
		if err := os.WriteFile(filepath.Join(dir, journalFile), raw, 0o600); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("intact again", func(t *testing.T) {
		j, pending, err := OpenJournal(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		if len(pending) != 1 || pending[0].Epoch != 1 {
			t.Fatalf("pending = %v, want epoch 1", pending)
		}
		pending[0].Release()
	})
}

func TestJournalTamperDetection(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(testEpochRec(1, 1, 1, 1, 2, 2, testBlock)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	raw, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one ciphertext bit (past the length prefix and clear prefix).
	raw[4+journalPrefixLen+8] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, journalFile), raw, 0o600); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenJournal(dir, nil)
	if !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("tampered journal: err = %v, want ErrIntegrity class", err)
	}
}

func TestJournalTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(testEpochRec(1, 1, 1, 1, 2, 2, testBlock)); err != nil {
		t.Fatal(err)
	}
	if err := j.Complete(1); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a crash mid-append of an unacknowledged epoch-2 record: a
	// torn record past the counter. Recovery must ignore it (epoch 2 was
	// never dispatched) and not treat it as tampering.
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x01, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, pending, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	defer j2.Close()
	if len(pending) != 0 {
		t.Fatalf("pending = %d, want 0", len(pending))
	}
	if j2.LastEpoch() != 1 {
		t.Fatalf("LastEpoch = %d, want 1", j2.LastEpoch())
	}
	// The journal must still be appendable after the torn tail: epoch 2
	// re-runs as a fresh epoch.
	if err := j2.Begin(testEpochRec(2, 1, 1, 1, 2, 2, testBlock)); err != nil {
		t.Fatal(err)
	}
}

func TestJournalCrashArtifactPastCounterDropped(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(testEpochRec(1, 1, 1, 1, 2, 2, testBlock)); err != nil {
		t.Fatal(err)
	}
	// Craft a fully-written epoch-2 record but roll the counter back to 1,
	// simulating a crash after the append fsync but before the counter
	// bump: the record authenticates yet was never acknowledged.
	rec2 := j.sealJournal(2, journalKindEpoch, encodeJournalEpoch(testEpochRec(2, 1, 1, 1, 2, 2, testBlock)))
	j.mu.Lock()
	err = j.append(rec2)
	j.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, pending, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.LastEpoch() != 1 {
		t.Fatalf("LastEpoch = %d, want 1", j2.LastEpoch())
	}
	if len(pending) != 1 || pending[0].Epoch != 1 {
		t.Fatalf("pending = %v, want exactly epoch 1", pending)
	}
	pending[0].Release()
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64
	compacted := false
	for e := uint64(1); e <= journalCompactEvery+4; e++ {
		if err := j.Begin(testEpochRec(e, 1, 2, 1, 3, 4, testBlock)); err != nil {
			t.Fatal(err)
		}
		if err := j.Complete(e); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(filepath.Join(dir, journalFile))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() < prev {
			compacted = true
		}
		prev = st.Size()
	}
	if !compacted {
		t.Fatalf("journal never compacted over %d begin/complete cycles (final size %d)",
			journalCompactEvery+4, prev)
	}
	last := j.LastEpoch()
	j.Close()

	j2, pending, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 0 {
		t.Fatalf("pending = %d, want 0 after compaction", len(pending))
	}
	if j2.LastEpoch() != last {
		t.Fatalf("LastEpoch = %d, want %d across compaction", j2.LastEpoch(), last)
	}
	if err := j2.Begin(testEpochRec(last+1, 1, 2, 1, 3, 4, testBlock)); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRecordShapePublic(t *testing.T) {
	// Two epochs with identical public shape but different keys, values,
	// and reply IDs must produce byte-equal record lengths.
	mk := func(seed uint64) int {
		e := testEpochRec(1, 2, 3, 2, 4, 5, testBlock)
		for i := range e.Planes {
			p := &e.Planes[i]
			for jr := 0; jr < p.Batch.Len(); jr++ {
				p.Batch.Key[jr] = seed * uint64(jr+1)
			}
			for f := range p.Feeds {
				for jr := range p.Feeds[f].IDs {
					p.Feeds[f].IDs[jr] = seed<<32 | uint64(jr)
					p.Feeds[f].Reqs.Key[jr] = seed + uint64(jr)
				}
			}
		}
		return len(encodeJournalEpoch(e))
	}
	if a, b := mk(3), mk(0xdeadbeef); a != b {
		t.Fatalf("record length depends on secrets: %d vs %d", a, b)
	}
}
