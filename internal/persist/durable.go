package persist

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"snoopy/internal/crypt"
	"snoopy/internal/replica"
	"snoopy/internal/store"
	"snoopy/internal/telemetry"
	"snoopy/internal/trace"
)

// FileCounter satisfies the §9 trusted-counter contract internal/replica
// defines, so a replica.Group can share a durable partition's counter.
var _ replica.Counter = (*FileCounter)(nil)

// Partition is the in-process subORAM interface Durable wraps. It is
// satisfied by *suboram.SubORAM.
type Partition interface {
	Init(ids []uint64, data []byte) error
	BatchAccess(reqs *store.Requests) (*store.Requests, error)
	Export() (ids []uint64, data []byte, err error)
}

// restorer is the fast-path state-import hook: partitions that implement it
// load recovered state without re-running Init's validation (the snapshot
// was authenticated and was written by this same enclave).
type restorer interface {
	Restore(ids []uint64, data []byte) error
}

// Config tunes a Durable wrapper. The zero value works: every field has a
// default.
type Config struct {
	// BlockSize is the partition's object value size in bytes (default 160,
	// matching snoopy.Config). Must match the wrapped partition.
	BlockSize int
	// ChunkBlocks is the number of objects per sealed snapshot chunk
	// (default 256). Chunk size — a public parameter — trades sealing
	// overhead against write granularity.
	ChunkBlocks int
	// WALRows is the fixed row count of a sealed WAL record (default 512).
	// Batches larger than WALRows span multiple records; smaller ones are
	// padded. Record size is public; row contents are not.
	WALRows int
	// SnapshotEvery bounds the epochs between snapshots (default 64):
	// recovery replays at most SnapshotEvery WAL epochs.
	SnapshotEvery int
	// Key overrides the sealing key. When nil, the key is loaded from (or
	// created at) seal.key in the partition directory — the simulation's
	// stand-in for the hardware sealing-key derivation.
	Key *crypt.Key
	// Rec, when non-nil, records the host-visible I/O trace (offset,
	// length of every file read/write) for the obliviousness tests.
	Rec *trace.Recorder
	// Telemetry, when non-nil, records WAL-append latency and epoch/
	// snapshot counters. Recording fires once per batch / snapshot with no
	// request-dependent payloads (WAL records are fixed-shape already); nil
	// disables it.
	Telemetry *telemetry.Registry
}

func (c *Config) fillDefaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = 160
	}
	if c.ChunkBlocks <= 0 {
		c.ChunkBlocks = 256
	}
	if c.WALRows <= 0 {
		c.WALRows = 512
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 64
	}
}

// Durable wraps a partition with sealed, crash-recoverable durability. It
// implements the same Init/BatchAccess surface as the partition itself
// (core.SubORAMClient), so it drops into a deployment wherever a plain
// subORAM does. Every acknowledged batch is on disk — sealed, bound to the
// trusted epoch counter — before BatchAccess returns.
type Durable struct {
	cfg   Config
	inner Partition
	d     *dir
	ctr   *FileCounter

	mu        sync.Mutex
	wal       *os.File
	walSize   int64
	walEpochs int    // complete epochs in the WAL since the last snapshot
	snapEpoch uint64 // epoch of the on-disk snapshot
	recovered bool
	replayed  int // WAL epochs replayed during recovery (observability)

	// Telemetry instruments; all nil (no-ops) when Config.Telemetry is nil.
	telWALAppend *telemetry.Histogram
	telWALEpochs *telemetry.Counter
	telSnapshots *telemetry.Counter
}

// NewDurable opens (or creates) the partition directory and wraps inner.
// When the directory holds state, it is recovered into inner: the snapshot
// is loaded, the WAL replayed up to the trusted counter, and any
// unacknowledged tail discarded — so a process killed at any point resumes
// exactly at its last acknowledged batch. Sealed-state tampering and
// rollback surface here as enclave.ErrIntegrity / ErrRollback errors.
func NewDurable(path string, inner Partition, cfg Config) (*Durable, error) {
	cfg.fillDefaults()
	d, err := openDir(path, cfg.Key, cfg.Rec)
	if err != nil {
		return nil, err
	}
	ctr, counterExisted, err := openCounter(d)
	if err != nil {
		return nil, err
	}
	dur := &Durable{
		cfg: cfg, inner: inner, d: d, ctr: ctr,
		telWALAppend: cfg.Telemetry.Histogram("persist_wal_append", nil),
		telWALEpochs: cfg.Telemetry.Counter("persist_wal_epochs_total"),
		telSnapshots: cfg.Telemetry.Counter("persist_snapshots_total"),
	}

	epoch := ctr.Current()
	snapEpoch, ids, data, blockSize, err := d.readSnapshot()
	switch {
	case err == nil:
		if blockSize != cfg.BlockSize {
			return nil, fmt.Errorf("persist: partition sealed with block size %d, configured %d", blockSize, cfg.BlockSize)
		}
		if snapEpoch > epoch {
			return nil, fmt.Errorf("%w (snapshot at epoch %d, counter at %d)", ErrRollback, snapEpoch, epoch)
		}
		validLen := int64(0)
		if snapEpoch < epoch {
			index := make(map[uint64]int, len(ids))
			for i, id := range ids {
				index[id] = i
			}
			validLen, err = d.replayWAL(d.file(walFile), snapEpoch, epoch, cfg.WALRows, cfg.BlockSize,
				func(rows []byte) { applyRows(rows, cfg.BlockSize, index, data) })
			if err != nil {
				return nil, err
			}
		}
		if r, ok := inner.(restorer); ok {
			err = r.Restore(ids, data)
		} else {
			err = inner.Init(ids, data)
		}
		if err != nil {
			return nil, err
		}
		dur.snapEpoch = snapEpoch
		dur.walEpochs = int(epoch - snapEpoch)
		dur.replayed = dur.walEpochs
		dur.recovered = true
		if err := dur.openWAL(validLen); err != nil {
			return nil, err
		}
	case errors.Is(err, os.ErrNotExist):
		// No snapshot: legitimate only for a partition that never completed
		// an Init — the counter must still be at zero and the WAL empty.
		if counterExisted && epoch != 0 {
			return nil, fmt.Errorf("%w (no snapshot, counter at epoch %d)", ErrRollback, epoch)
		}
		if st, err := os.Stat(d.file(walFile)); err == nil && st.Size() != 0 {
			return nil, errCorrupt("write-ahead log present without a snapshot")
		}
		if err := dur.openWAL(0); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	cfg.Telemetry.Counter("persist_recovered_epochs_total").Add(uint64(dur.replayed))
	return dur, nil
}

// openWAL opens the append handle, discarding anything past validLen (the
// torn or unacknowledged tail identified during replay).
func (dur *Durable) openWAL(validLen int64) error {
	f, err := os.OpenFile(dur.d.file(walFile), os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return err
	}
	dur.wal = f
	dur.walSize = validLen
	return nil
}

// Recovered reports whether the directory held state that was restored into
// the wrapped partition.
func (dur *Durable) Recovered() bool {
	dur.mu.Lock()
	defer dur.mu.Unlock()
	return dur.recovered
}

// ReplayedEpochs reports how many sealed WAL epochs recovery replayed on
// top of the snapshot when the directory was opened (0 for a fresh
// partition) — the local resynchronization work a restart performed.
func (dur *Durable) ReplayedEpochs() int {
	dur.mu.Lock()
	defer dur.mu.Unlock()
	return dur.replayed
}

// Epoch returns the trusted counter: the number of acknowledged batches.
func (dur *Durable) Epoch() uint64 { return dur.ctr.Current() }

// Counter exposes the partition's trusted monotonic counter for §9
// replication (replica.NewGroup).
func (dur *Durable) Counter() *FileCounter { return dur.ctr }

// Init loads the partition and seals the full image as the new snapshot.
func (dur *Durable) Init(ids []uint64, data []byte) error {
	dur.mu.Lock()
	defer dur.mu.Unlock()
	if err := dur.inner.Init(ids, data); err != nil {
		return err
	}
	return dur.snapshotLocked(ids, data)
}

// BatchAccess applies one batch and makes it durable before returning: the
// batch's write effects are sealed into the WAL, the trusted counter
// advances, and only then is the response released. Periodically (every
// SnapshotEvery epochs) the pre-batch state is first compacted into a fresh
// snapshot and the WAL reset, bounding recovery replay.
func (dur *Durable) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	dur.mu.Lock()
	defer dur.mu.Unlock()
	if reqs.BlockSize != dur.cfg.BlockSize {
		return nil, fmt.Errorf("persist: batch block size %d != %d", reqs.BlockSize, dur.cfg.BlockSize)
	}
	if err := dur.ctr.Err(); err != nil {
		return nil, fmt.Errorf("persist: epoch counter lost durability: %w", err)
	}
	if dur.walEpochs >= dur.cfg.SnapshotEvery {
		// Snapshot the pre-batch state (all acknowledged epochs). Doing it
		// before the batch — never after — means a crash between the
		// snapshot rename and the WAL reset leaves only redundant log
		// records, not an unacknowledged state image.
		ids, data, err := dur.inner.Export()
		if err != nil {
			return nil, err
		}
		if err := dur.snapshotLocked(ids, data); err != nil {
			return nil, err
		}
	}
	out, err := dur.inner.BatchAccess(reqs)
	if err != nil {
		return nil, err
	}
	epoch := dur.ctr.Current() + 1
	tw0 := dur.cfg.Telemetry.Now()
	if err := dur.d.appendWAL(dur.wal, &dur.walSize, epoch, reqs, dur.cfg.WALRows, dur.cfg.BlockSize); err != nil {
		return nil, err
	}
	if err := dur.wal.Sync(); err != nil {
		return nil, err
	}
	// Once per acknowledged batch: the sealed append + fsync that gates the
	// response. WAL records are fixed-shape (padded to WALRows), so neither
	// the duration's cause nor the counter carries request contents.
	dur.telWALAppend.Observe(time.Duration(dur.cfg.Telemetry.Now() - tw0))
	dur.telWALEpochs.Inc()
	dur.ctr.Increment()
	if err := dur.ctr.Err(); err != nil {
		return nil, fmt.Errorf("persist: epoch counter lost durability: %w", err)
	}
	dur.walEpochs++
	return out, nil
}

// Snapshot forces an immediate snapshot of the current state, resetting the
// WAL. Used by tests and operational tooling; the steady-state path
// snapshots automatically every SnapshotEvery epochs.
func (dur *Durable) Snapshot() error {
	dur.mu.Lock()
	defer dur.mu.Unlock()
	ids, data, err := dur.inner.Export()
	if err != nil {
		return err
	}
	return dur.snapshotLocked(ids, data)
}

// snapshotLocked seals the given image at the current epoch and resets the
// WAL. Caller holds mu.
func (dur *Durable) snapshotLocked(ids []uint64, data []byte) error {
	epoch := dur.ctr.Current()
	if err := dur.d.writeSnapshot(epoch, ids, data, dur.cfg.BlockSize, dur.cfg.ChunkBlocks); err != nil {
		return err
	}
	if err := dur.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := dur.wal.Seek(0, 0); err != nil {
		return err
	}
	dur.d.rec.Record(trace.KindFileWrite, 0, 0) // WAL reset, shape-only event
	dur.telSnapshots.Inc()
	dur.walSize = 0
	dur.walEpochs = 0
	dur.snapEpoch = epoch
	return nil
}

// Export passes through to the wrapped partition, so a Durable composes
// anywhere a Partition does (replication, engine migration).
func (dur *Durable) Export() (ids []uint64, data []byte, err error) {
	return dur.inner.Export()
}

// Restore imports a trusted state image — the receiving side of a §9
// replica resynchronization: the image came sealed from a fresh peer's
// enclave, so it skips Init's validation where the partition supports
// that, and it is immediately sealed as the new on-disk snapshot (WAL
// reset) so the rejoin itself is crash-consistent.
func (dur *Durable) Restore(ids []uint64, data []byte) error {
	dur.mu.Lock()
	defer dur.mu.Unlock()
	var err error
	if r, ok := dur.inner.(restorer); ok {
		err = r.Restore(ids, data)
	} else {
		err = dur.inner.Init(ids, data)
	}
	if err != nil {
		return err
	}
	return dur.snapshotLocked(ids, data)
}

// Close releases the WAL handle. State already acknowledged remains
// recoverable; Close is not required for durability (kill -9 is the normal
// shutdown model this package is built for).
func (dur *Durable) Close() error {
	dur.mu.Lock()
	defer dur.mu.Unlock()
	if dur.wal == nil {
		return nil
	}
	err := dur.wal.Close()
	dur.wal = nil
	return err
}
