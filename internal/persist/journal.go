// Epoch journal: the root load balancer's sealed, crash-recoverable record
// of every epoch it is about to dispatch (paper §5's failure story extended
// to the LB plane). Before stage-B dispatch the root appends one sealed
// record holding the epoch's merged per-plane batches, the client→reply
// routing tables (per-feed request snapshots plus per-request reply IDs),
// and the per-partition (lbID, seq) delivery tags the dispatch will use. A
// standby root that opens the same journal replays the incomplete epochs
// verbatim: it adopts the journaled delivery tags, so partitions that
// already applied a batch answer from their replay caches instead of
// re-applying — the epoch is all-or-nothing across root crashes.
//
// Rollback protection mirrors the WAL's: the trusted FileCounter is bumped
// after each epoch record is durably appended (the acknowledge point), so a
// host that hides the journal tail leaves the counter ahead of the last
// readable record and recovery fails with ErrRollback. Records past the
// counter are crash artifacts of an unacknowledged append — that epoch was
// never dispatched — and are discarded.
//
// Obliviousness: every record's length is a closed-form function of public
// parameters only — the plane count L, partition count S, feed count F, the
// Theorem-3 batch size α, and the per-feed request counts R_f, all of which
// the network adversary already observes. Record contents are AEAD-sealed;
// the journal's I/O trace (offsets and lengths) is bit-identical across
// request streams that differ only in secrets, and internal/trace asserts
// it.
package persist

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"sync"

	"snoopy/internal/arena"
	"snoopy/internal/store"
	"snoopy/internal/trace"
	"snoopy/internal/wirecode"
)

const (
	journalFile    = "journal"
	journalContext = "snoopy-persist/journal/v1"

	journalKindEpoch = 1
	journalKindDone  = 2
	journalKindCkpt  = 3

	// journalPrefixLen is the public stored prefix of every journal record:
	// u64 epoch + u32 kind, bound through the AAD.
	journalPrefixLen = 12

	// journalCompactEvery bounds file growth: once no epoch is in flight and
	// at least this many records accumulated since the last compaction, the
	// file is atomically rewritten to a single checkpoint record. A public
	// parameter — compaction timing is a function of the epoch schedule.
	journalCompactEvery = 16
)

// JournalTag is the (lbID, seq) delivery-tag state of one partition client
// immediately before an epoch's dispatch: Seq is the last consumed sequence
// number, so the epoch's delivery travels as Seq+1. A zero tag marks a
// partition client without replay-tagged delivery (replay is then
// at-least-once for that partition).
type JournalTag struct {
	LBID uint64
	Seq  uint64
}

// JournalFeed is one feed's client→reply routing table: the request
// snapshot stage A built (row j belongs to queue position j), the
// per-request reply IDs (0 = caller did not ask for idempotent tracking),
// and the feed's leaf-local overflow victims.
type JournalFeed struct {
	// OK reports whether the feed's run made it into the batches; a failed
	// feed's requests were never dispatched.
	OK bool
	// Reqs is the feed's request snapshot (Seq = Client = queue index).
	Reqs *store.Requests
	// IDs[j] is the reply ID of queue position j (len = Reqs.Len()).
	IDs []uint64
	// Dropped are the feed's leaf-local Theorem-3 overflow victim keys.
	Dropped []uint64
	// Denied, when non-nil, is the per-request ACL denial mask.
	Denied []uint8
}

// JournalPlane is one load-balancer plane's stage-A output.
type JournalPlane struct {
	// OK reports whether stage A succeeded for the plane (Batch non-nil).
	OK bool
	// PerSub is the plane's Theorem-3 per-partition batch size α.
	PerSub int
	// Batch holds the merged α·S batch rows in partition-major order
	// (partition s owns rows [s·α, (s+1)·α)); nil when !OK.
	Batch *store.Requests
	// Dropped are the plane-wide overflow victim keys.
	Dropped []uint64
	// Feeds are the per-feed routing tables.
	Feeds []JournalFeed
}

// JournalEpoch is one journaled epoch: everything a standby root needs to
// re-issue the epoch and route the replies.
type JournalEpoch struct {
	Epoch     uint64
	BlockSize int
	// ACLOK is false when the epoch's ACL resolution failed (stage C would
	// have failed every request; replay parks nothing).
	ACLOK bool
	// Tags[s] is partition s's delivery-tag state before this dispatch.
	Tags   []JournalTag
	Planes []JournalPlane
}

// Release returns the epoch's decoded batch and snapshot storage to the
// arena. Call it after replay.
func (e *JournalEpoch) Release() {
	for i := range e.Planes {
		arena.Default.PutRequests(e.Planes[i].Batch)
		e.Planes[i].Batch = nil
		for f := range e.Planes[i].Feeds {
			arena.Default.PutRequests(e.Planes[i].Feeds[f].Reqs)
			e.Planes[i].Feeds[f].Reqs = nil
		}
	}
}

// Journal is the root's sealed epoch journal. All methods are safe for
// concurrent use (Begin runs under the root's epoch mutex, Complete from
// concurrent stage-C goroutines).
type Journal struct {
	mu  sync.Mutex
	d   *dir
	ctr *FileCounter
	f   *os.File
	off int64 // current append offset (trace bookkeeping)

	open            map[uint64]struct{} // journaled epochs not yet complete
	last            uint64              // last acknowledged (journaled) epoch
	completeThrough uint64              // checkpoint base of the current file
	sinceCompact    int
}

// OpenJournal opens (or creates) the epoch journal in dirPath, verifies it
// against the trusted counter, and returns the journaled-but-incomplete
// epochs in ascending order — the epochs a standby root must replay. The
// caller owns the returned epochs' storage (JournalEpoch.Release). rec,
// when non-nil, traces every file operation for the obliviousness tests.
func OpenJournal(dirPath string, rec *trace.Recorder) (*Journal, []*JournalEpoch, error) {
	d, err := openDir(dirPath, nil, rec)
	if err != nil {
		return nil, nil, err
	}
	ctr, _, err := openCounter(d)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{d: d, ctr: ctr, open: make(map[uint64]struct{})}
	pending, err := j.recover()
	if err != nil {
		return nil, nil, err
	}
	if err := j.openAppend(); err != nil {
		releaseAll(pending)
		return nil, nil, err
	}
	return j, pending, nil
}

func releaseAll(es []*JournalEpoch) {
	for _, e := range es {
		e.Release()
	}
}

func (j *Journal) openAppend() error {
	f, err := os.OpenFile(j.d.file(journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.off = st.Size()
	return nil
}

// LastEpoch returns the last journaled (acknowledged) epoch; a recovering
// root continues its epoch sequence from here.
func (j *Journal) LastEpoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.last
}

// Begin durably journals an epoch before its dispatch. Epochs must be
// journaled in order (rec.Epoch == LastEpoch()+1). On return the record is
// fsynced and the trusted counter bumped: the epoch is now guaranteed to
// either complete or be replayed by a successor.
func (j *Journal) Begin(rec *JournalEpoch) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if rec.Epoch != j.last+1 {
		return errCorrupt("journal: epoch %d out of order (last journaled %d)", rec.Epoch, j.last)
	}
	body := j.sealJournal(rec.Epoch, journalKindEpoch, encodeJournalEpoch(rec))
	if err := j.append(body); err != nil {
		return err
	}
	// The counter bump is the acknowledge point: a crash before it leaves a
	// record past the counter, which recovery discards as never-dispatched.
	j.ctr.Increment()
	if err := j.ctr.Err(); err != nil {
		return err
	}
	j.last = rec.Epoch
	j.open[rec.Epoch] = struct{}{}
	j.sinceCompact++
	return nil
}

// Complete marks a journaled epoch fully replied. When no epoch is in
// flight the journal compacts to a single checkpoint record, bounding file
// growth to the pipeline depth times the (public) record size.
func (j *Journal) Complete(epoch uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.open[epoch]; !ok {
		return nil // already complete (replayed twice, or pre-checkpoint)
	}
	var pt [8]byte
	binary.LittleEndian.PutUint64(pt[:], epoch)
	if err := j.append(j.sealJournal(epoch, journalKindDone, pt[:])); err != nil {
		return err
	}
	delete(j.open, epoch)
	j.sinceCompact++
	if len(j.open) == 0 && j.sinceCompact >= journalCompactEvery {
		return j.compact()
	}
	return nil
}

// Err surfaces the trusted counter's sticky persistence failure, if any.
func (j *Journal) Err() error { return j.ctr.Err() }

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// append writes one framed record and fsyncs. Caller holds j.mu.
func (j *Journal) append(body []byte) error {
	if j.f == nil {
		return errors.New("persist: journal closed")
	}
	if _, err := j.f.Write(body); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.d.rec.Record(trace.KindFileWrite, int(j.off), len(body))
	j.off += int64(len(body))
	return nil
}

// compact atomically rewrites the journal as one checkpoint record. Caller
// holds j.mu and has verified no epoch is in flight.
func (j *Journal) compact() error {
	var pt [8]byte
	binary.LittleEndian.PutUint64(pt[:], j.last)
	body := j.sealJournal(j.last, journalKindCkpt, pt[:])
	if err := j.f.Close(); err != nil {
		return err
	}
	j.f = nil
	if err := j.d.writeFileAtomic(journalFile, body); err != nil {
		return err
	}
	j.completeThrough = j.last
	j.sinceCompact = 0
	return j.openAppend()
}

// sealJournal frames one record: u32 length | prefix(epoch, kind) |
// sealed payload with AAD = context || prefix.
func (j *Journal) sealJournal(epoch uint64, kind uint32, pt []byte) []byte {
	var prefix [journalPrefixLen]byte
	binary.LittleEndian.PutUint64(prefix[:8], epoch)
	binary.LittleEndian.PutUint32(prefix[8:], kind)
	return j.d.sealPrefixed(journalContext, prefix[:], pt)
}

// recover reads and verifies the journal file against the trusted counter,
// returning the incomplete epochs in ascending order.
func (j *Journal) recover() ([]*JournalEpoch, error) {
	j.last = j.ctr.Current()
	f, err := os.Open(j.d.file(journalFile))
	if errors.Is(err, os.ErrNotExist) {
		if j.ctr.Current() != 0 {
			return nil, ErrRollback
		}
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	epochs := make(map[uint64]*JournalEpoch)
	done := make(map[uint64]struct{})
	var off int64
	fail := func(err error) ([]*JournalEpoch, error) {
		for _, e := range epochs {
			e.Release()
		}
		return nil, err
	}
	for {
		epoch, kind, pt, n, err := j.readJournalRecord(f, off)
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// Torn tail: a crash mid-append. Legitimate only for the record
			// past the acknowledge point, which the counter check below
			// enforces.
			break
		}
		if err != nil {
			return fail(err)
		}
		off += int64(n)
		switch kind {
		case journalKindCkpt:
			if len(epochs) != 0 || len(done) != 0 {
				return fail(errCorrupt("journal: checkpoint after epoch records"))
			}
			j.completeThrough = epoch
		case journalKindEpoch:
			je, err := decodeJournalEpoch(epoch, pt)
			if err != nil {
				return fail(err)
			}
			if old := epochs[epoch]; old != nil {
				old.Release()
			}
			epochs[epoch] = je
		case journalKindDone:
			done[epoch] = struct{}{}
		default:
			return fail(errCorrupt("journal: unknown record kind %d", kind))
		}
	}

	// Crash artifacts: records past the trusted counter were never
	// acknowledged (their dispatch never happened); drop them.
	ctr := j.ctr.Current()
	for e, je := range epochs {
		if e > ctr {
			je.Release()
			delete(epochs, e)
		}
	}
	if j.completeThrough > ctr {
		return fail(ErrRollback)
	}
	// Every acknowledged epoch in (completeThrough, ctr] must be present: a
	// missing one means the host rolled the journal file back.
	var pending []*JournalEpoch
	for e := j.completeThrough + 1; e <= ctr; e++ {
		je, ok := epochs[e]
		if !ok {
			return fail(ErrRollback)
		}
		if _, ok := done[e]; ok {
			je.Release()
			continue
		}
		j.open[e] = struct{}{}
		pending = append(pending, je)
	}
	return pending, nil
}

// readJournalRecord reads one framed journal record: epoch, kind, opened
// payload, and the framed byte count consumed.
func (j *Journal) readJournalRecord(r io.Reader, off int64) (epoch uint64, kind uint32, pt []byte, n int, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, 0, err // io.EOF or io.ErrUnexpectedEOF
	}
	bodyLen := int(binary.LittleEndian.Uint32(hdr[:]))
	if bodyLen > maxRecord || bodyLen < journalPrefixLen {
		return 0, 0, nil, 0, errCorrupt("journal: record of %d bytes out of range", bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, 0, io.ErrUnexpectedEOF
	}
	j.d.rec.Record(trace.KindFileRead, int(off), 4+bodyLen)
	prefix := body[:journalPrefixLen]
	pt, err = j.d.sealer.Open(body[journalPrefixLen:], aad(journalContext, prefix))
	if err != nil {
		return 0, 0, nil, 0, errCorrupt("journal: record authentication failed")
	}
	epoch = binary.LittleEndian.Uint64(prefix[:8])
	kind = binary.LittleEndian.Uint32(prefix[8:])
	return epoch, kind, pt, 4 + bodyLen, nil
}

// --- epoch payload codec -------------------------------------------------
//
// Fixed little-endian layout; every length below is a function of the
// public shape (L, S, F, α, R_f) only:
//
//	u32 L | u32 S | u32 F | u32 blockSize | u8 aclOK
//	S × (u64 lbID, u64 seq)
//	per plane: u8 ok | u32 perSub | u32 batchLen + wirecode frame
//	           | u32 nDrop + nDrop×u64
//	  per feed: u8 ok | u32 reqLen + wirecode frame | u32 n + n×u64 ids
//	            | u32 nDrop + nDrop×u64 | u8 hasDenied + [n]u8

func encodeJournalEpoch(e *JournalEpoch) []byte {
	var b []byte
	u32 := func(v int) { b = binary.LittleEndian.AppendUint32(b, uint32(v)) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u8 := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	keys := func(ks []uint64) {
		u32(len(ks))
		for _, k := range ks {
			u64(k)
		}
	}
	L := len(e.Planes)
	S := len(e.Tags)
	F := 0
	if L > 0 {
		F = len(e.Planes[0].Feeds)
	}
	u32(L)
	u32(S)
	u32(F)
	u32(e.BlockSize)
	u8(e.ACLOK)
	for _, t := range e.Tags {
		u64(t.LBID)
		u64(t.Seq)
	}
	for i := range e.Planes {
		p := &e.Planes[i]
		u8(p.OK)
		u32(p.PerSub)
		if p.OK && p.Batch != nil {
			u32(wirecode.FrameLen(p.Batch.Len(), e.BlockSize))
			b = wirecode.AppendRequests(b, p.Batch)
		} else {
			u32(0)
		}
		keys(p.Dropped)
		for f := range p.Feeds {
			fd := &p.Feeds[f]
			u8(fd.OK)
			u32(wirecode.FrameLen(fd.Reqs.Len(), e.BlockSize))
			b = wirecode.AppendRequests(b, fd.Reqs)
			keys(fd.IDs)
			keys(fd.Dropped)
			if fd.Denied != nil {
				b = append(b, 1)
				b = append(b, fd.Denied...)
			} else {
				b = append(b, 0)
			}
		}
	}
	return b
}

// journalCursor decodes the fixed layout defensively: the payload is
// AEAD-authenticated, but a decode must still fail closed, never panic.
type journalCursor struct {
	b   []byte
	err error
}

func (c *journalCursor) take(n int) []byte {
	if c.err != nil || n < 0 || n > len(c.b) {
		if c.err == nil {
			c.err = errCorrupt("journal: payload truncated")
		}
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *journalCursor) u32() int {
	raw := c.take(4)
	if raw == nil {
		return 0
	}
	return int(binary.LittleEndian.Uint32(raw))
}

func (c *journalCursor) u64() uint64 {
	raw := c.take(8)
	if raw == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(raw)
}

func (c *journalCursor) bool() bool {
	raw := c.take(1)
	return raw != nil && raw[0] == 1
}

func (c *journalCursor) keys() []uint64 {
	n := c.u32()
	if c.err != nil || n > len(c.b)/8 {
		if c.err == nil {
			c.err = errCorrupt("journal: key list truncated")
		}
		return nil
	}
	if n == 0 {
		return nil
	}
	ks := make([]uint64, n)
	for i := range ks {
		ks[i] = c.u64()
	}
	return ks
}

// maxJournalDim bounds the decoded shape fields so a corrupted payload
// cannot force huge allocations before the cross-checks below run.
const maxJournalDim = 1 << 20

func decodeJournalEpoch(epoch uint64, pt []byte) (*JournalEpoch, error) {
	c := &journalCursor{b: pt}
	L := c.u32()
	S := c.u32()
	F := c.u32()
	blockSize := c.u32()
	aclOK := c.bool()
	if c.err != nil {
		return nil, c.err
	}
	if L < 0 || L > maxJournalDim || S < 0 || S > maxJournalDim || F < 0 || F > maxJournalDim || blockSize <= 0 {
		return nil, errCorrupt("journal: epoch %d shape (%d,%d,%d,%d) out of range", epoch, L, S, F, blockSize)
	}
	e := &JournalEpoch{
		Epoch:     epoch,
		BlockSize: blockSize,
		ACLOK:     aclOK,
		Tags:      make([]JournalTag, S),
		Planes:    make([]JournalPlane, L),
	}
	release := func() {
		e.Release()
	}
	for s := range e.Tags {
		e.Tags[s].LBID = c.u64()
		e.Tags[s].Seq = c.u64()
	}
	for i := range e.Planes {
		p := &e.Planes[i]
		p.OK = c.bool()
		p.PerSub = c.u32()
		if bl := c.u32(); bl > 0 {
			frame := c.take(bl)
			if c.err != nil {
				release()
				return nil, c.err
			}
			batch, err := wirecode.DecodeRequests(frame, nil)
			if err != nil {
				release()
				return nil, errCorrupt("journal: epoch %d plane %d batch: %v", epoch, i, err)
			}
			p.Batch = batch
		}
		p.Dropped = c.keys()
		p.Feeds = make([]JournalFeed, F)
		for f := range p.Feeds {
			fd := &p.Feeds[f]
			fd.OK = c.bool()
			rl := c.u32()
			frame := c.take(rl)
			if c.err != nil {
				release()
				return nil, c.err
			}
			reqs, err := wirecode.DecodeRequests(frame, nil)
			if err != nil {
				release()
				return nil, errCorrupt("journal: epoch %d plane %d feed %d snapshot: %v", epoch, i, f, err)
			}
			fd.Reqs = reqs
			fd.IDs = c.keys()
			fd.Dropped = c.keys()
			if c.bool() {
				fd.Denied = append([]uint8(nil), c.take(reqs.Len())...)
			}
			if c.err != nil {
				release()
				return nil, c.err
			}
			if len(fd.IDs) != reqs.Len() {
				release()
				return nil, errCorrupt("journal: epoch %d feed %d has %d ids for %d requests", epoch, f, len(fd.IDs), reqs.Len())
			}
		}
	}
	if c.err != nil {
		release()
		return nil, c.err
	}
	return e, nil
}
