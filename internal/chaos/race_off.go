//go:build !race

package chaos

// raceEnabled reports whether the race detector is compiled in; the
// default group reply deadline scales with its slowdown.
const raceEnabled = false
