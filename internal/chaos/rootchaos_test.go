package chaos

import (
	"os"
	"testing"
	"time"
)

// checkRootRun asserts the root harness's invariants for one seed: the
// client history is linearizable through every root kill, every tracked
// request was answered exactly once, every crash was matched by exactly
// one supervisor promotion with a measured time-to-recovery, and the
// telemetry export never drifts from the supervisor's own accounting.
func checkRootRun(t *testing.T, cfg RootConfig) *RootResult {
	t.Helper()
	res, err := RunRoot(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
	if !res.Linearizable {
		t.Fatalf("seed %d: history not linearizable (%d ops, %d retries, events %v)",
			cfg.Seed, res.Ops, res.Retries, res.Events)
	}
	if !res.ExactlyOnce || res.Unanswered != 0 {
		t.Fatalf("seed %d: exactly-once violated (exactlyOnce=%v unanswered=%d, events %v)",
			cfg.Seed, res.ExactlyOnce, res.Unanswered, res.Events)
	}
	if res.Ops == 0 {
		t.Fatalf("seed %d: no operations ran", cfg.Seed)
	}
	st := res.SupStats
	if got, want := st.RootPromotions, uint64(res.RootCrashes); got != want {
		t.Fatalf("seed %d: %d root crashes but %d promotions (%v)",
			cfg.Seed, res.RootCrashes, got, st)
	}
	if res.RootCrashes > 0 {
		if st.RootTrips == 0 || st.RootRecoveries == 0 {
			t.Fatalf("seed %d: crashes not accounted: %v", cfg.Seed, st)
		}
		if st.RootMeanTimeToRecovery <= 0 || st.RootMaxTimeToRecovery < st.RootMeanTimeToRecovery {
			t.Fatalf("seed %d: time-to-recovery not measured: %v", cfg.Seed, st)
		}
	}
	checkRootTelemetryAccounting(t, cfg.Seed, res)
	return res
}

// checkRootTelemetryAccounting is the root-plane analogue of
// checkTelemetryAccounting: the registry's root counters must match the
// supervisor's Stats exactly.
func checkRootTelemetryAccounting(t *testing.T, seed int64, res *RootResult) {
	t.Helper()
	c := res.Telemetry.Counters
	if got, want := c["cluster_root_trips_total"], res.SupStats.RootTrips; got != want {
		t.Fatalf("seed %d: telemetry reports %d root trips, supervisor counted %d", seed, got, want)
	}
	if got, want := c["cluster_root_promotions_total"], res.SupStats.RootPromotions; got != want {
		t.Fatalf("seed %d: telemetry reports %d root promotions, supervisor counted %d", seed, got, want)
	}
	if got, want := c["cluster_root_promotion_failures_total"], res.SupStats.RootPromotionFailures; got != want {
		t.Fatalf("seed %d: telemetry reports %d root promotion failures, supervisor counted %d", seed, got, want)
	}
	var recoveries uint64
	for _, h := range res.Telemetry.Histograms {
		if h.Name == "cluster_root_time_to_recovery" {
			recoveries = h.Count
		}
	}
	if got, want := recoveries, uint64(res.SupStats.RootRecoveries); got != want {
		t.Fatalf("seed %d: telemetry recorded %d root recoveries, supervisor counted %d", seed, got, want)
	}
}

// TestRootChaosSeededRuns drives a few fixed seeds through the seeded
// schedule of root kills and partition outages.
func TestRootChaosSeededRuns(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		res := checkRootRun(t, RootConfig{Seed: seed, Dir: t.TempDir(), Log: t.Logf})
		t.Logf("seed %d: ops=%d retries=%d failed_attempts=%d dups=%d crashes=%d events=%d ttr=%v",
			seed, res.Ops, res.Retries, res.FailedAttempts, res.Duplicates,
			res.RootCrashes, len(res.Events), res.SupStats.RootMeanTimeToRecovery)
	}
}

// TestRootChaosCrashEveryPoint pins one crash to each of the three
// journal-protocol crash sites, so every recovery path (retry-fresh,
// replay-before-dispatch, replay-after-dispatch) is exercised
// deterministically regardless of the seeded draw.
func TestRootChaosCrashEveryPoint(t *testing.T) {
	res := checkRootRun(t, RootConfig{
		Seed:   7,
		Dir:    t.TempDir(),
		Epochs: 8,
		Crashes: map[int]string{
			2: "stage-a",
			4: "journal",
			6: "dispatch",
		},
		Log: t.Logf,
	})
	if res.RootCrashes < 3 {
		t.Fatalf("pinned crashes did not fire: %d crashes, events %v", res.RootCrashes, res.Events)
	}
	if res.Retries == 0 {
		t.Fatal("crashes produced no client retries")
	}
}

// TestRootChaosScheduleDeterministic: the same seed over the same
// journal directory must produce the identical event schedule and
// outcome counters (only wall-clock derived stats may differ). The
// directory matters because the oblivious routing key is sealed into it:
// a different dir routes keys to different partitions, changing which
// requests a partition outage fails.
func TestRootChaosScheduleDeterministic(t *testing.T) {
	dir := t.TempDir()
	run := func() *RootResult {
		res, err := RunRoot(RootConfig{Seed: 11, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d\n%v\n%v", len(a.Events), len(b.Events), a.Events, b.Events)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if a.Ops != b.Ops || a.Retries != b.Retries || a.Duplicates != b.Duplicates ||
		a.RootCrashes != b.RootCrashes || a.FailedAttempts != b.FailedAttempts {
		t.Fatalf("outcome counters differ:\n%+v\n%+v", a, b)
	}
}

// TestRootChaosSoak is the long-running root-failover soak (~16 seeds),
// the acceptance gate for the failover plane: every client history
// linearizable, every request answered exactly once, every crash matched
// by a promotion with measured time-to-recovery. Off by default; enable
// with SNOOPY_CHAOS_SOAK=1 (scripts/chaos.sh runs it).
func TestRootChaosSoak(t *testing.T) {
	if os.Getenv("SNOOPY_CHAOS_SOAK") == "" {
		t.Skip("set SNOOPY_CHAOS_SOAK=1 to run the root-failover soak")
	}
	crashes, start := 0, time.Now()
	for seed := int64(1); seed <= 16; seed++ {
		res := checkRootRun(t, RootConfig{Seed: seed, Dir: t.TempDir(), Epochs: 16})
		crashes += res.RootCrashes
	}
	if crashes == 0 {
		t.Fatal("soak schedule produced no root crashes across all seeds")
	}
	t.Logf("16 seeds, %d root crashes in %v", crashes, time.Since(start))
}
