// Package chaos is a deterministic, seeded fault-injection harness for the
// full self-healing stack: a core.System over replicated partitions
// (replica.Group with auto-heal and spares) is driven through a seeded
// schedule of kill / stall / rollback / restart events while client
// operations run, and the recorded history is checked for linearizability
// (internal/history). The harness also checks the convergence invariant:
// within K epochs of the last fault, every partition reports healthy again.
//
// The schedule is a pure function of Config.Seed: which member fails, how,
// and at which epoch boundary depends only on the seeded generator and the
// harness's own bookkeeping — never on wall-clock timing — so a failing
// seed replays exactly. (Reply timing and therefore per-epoch miss counts
// do vary run to run; the invariants checked are timing-independent.)
//
// Socket-level fault injection (severed attested channels, stalled frames)
// is exercised separately by internal/faultnet with the transport and core
// failover tests; this harness drives the replica-layer hooks, where the §9
// failure model (crashes and sealed-state rollbacks) lives.
package chaos

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"snoopy/internal/cluster"
	"snoopy/internal/core"
	"snoopy/internal/history"
	"snoopy/internal/replica"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/telemetry"
)

// Config parameterizes one chaos run. The zero value gets defaults; Seed
// alone distinguishes runs.
type Config struct {
	// Parts is the number of logical partitions, each a replica.Group.
	Parts int
	// F and R are each group's fault bounds: the schedule keeps at most F
	// concurrent crash-type faults (kill, stall) and R concurrent
	// rollbacks per group, matching the f+r+1 sizing of §9.
	F, R int
	// Spares is the number of standby replicas registered per group.
	Spares int
	// Keys is the object count; BlockSize the value size.
	Keys, BlockSize int
	// Epochs is the fault phase length; OpsPerEpoch the client load.
	Epochs, OpsPerEpoch int
	// K is the convergence budget: after the recovery actions that follow
	// the fault phase, every partition must be healthy within K epochs.
	K int
	// HealAfter is the groups' auto-heal threshold (consecutive misses).
	HealAfter int
	// Timeout is the groups' per-member reply deadline.
	Timeout time.Duration
	// Seed drives the event schedule and the workload.
	Seed int64
	// Log, when non-nil, narrates events (e.g. t.Logf).
	Log func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.Parts <= 0 {
		c.Parts = 2
	}
	if c.F <= 0 {
		c.F = 1
	}
	if c.R <= 0 {
		c.R = 1
	}
	if c.Spares < 0 {
		c.Spares = 0
	} else if c.Spares == 0 {
		c.Spares = 1
	}
	if c.Keys <= 0 {
		c.Keys = 16
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 24
	}
	if c.OpsPerEpoch <= 0 {
		c.OpsPerEpoch = 6
	}
	if c.K <= 0 {
		c.K = 6
	}
	if c.HealAfter <= 0 {
		c.HealAfter = 2
	}
	if c.Timeout <= 0 {
		// Generous enough that a healthy member never misses it (a
		// miss-everything epoch can leave every member stale with no fresh
		// donor — a real outage beyond the f+r bound, which no group
		// recovers from); small enough that the one full-deadline wait each
		// stall event costs stays cheap. The race detector slows batches by
		// an order of magnitude, so its deadline scales accordingly.
		c.Timeout = 500 * time.Millisecond
		if raceEnabled {
			c.Timeout = 2 * time.Second
		}
	}
}

// Event is one scheduled fault or recovery action.
type Event struct {
	Epoch        int
	Kind         string // "kill" | "restart" | "stall" | "unstall" | "rollback"
	Part, Member int
}

// Result summarizes one run.
type Result struct {
	// Ops and FailedOps count completed client operations and those that
	// returned errors (expected during outages; each still got a reply).
	Ops, FailedOps int
	// Events is the full schedule that ran, in order.
	Events []Event
	// Linearizable is the history.CheckLinearizable verdict.
	Linearizable bool
	// ConvergedAfter is how many post-recovery epochs it took for every
	// partition to report healthy, or -1 if the K budget ran out.
	ConvergedAfter int
	// GroupStats are the per-partition replication counters at the end
	// (stale replies, busy skips, resyncs/bytes/epochs, promotions).
	GroupStats []replica.GroupStats
	// Health is core's final per-partition health snapshot.
	Health core.HealthStats
	// SupStats is the failure-detector supervisor's own accounting, and
	// Telemetry is the final snapshot of the run's telemetry registry
	// (wired through core, every replica group, and the supervisor). The
	// telemetry is a mirror of the same events, so the two must agree
	// exactly — the harness's tests assert it for every seed.
	SupStats  cluster.Stats
	Telemetry telemetry.Snapshot
}

// node is a chaos-controllable partition replica: a real subORAM whose
// BatchAccess can be stalled indefinitely (wedged enclave, dead host behind
// a live session) and released later. Export/Restore pass through so the
// node works as a resync donor and receiver.
type node struct {
	inner *suboram.SubORAM

	mu   sync.Mutex
	gate chan struct{}
}

func newNode(blockSize int) *node {
	return &node{inner: suboram.New(suboram.Config{BlockSize: blockSize})}
}

func (n *node) stall() {
	n.mu.Lock()
	if n.gate == nil {
		n.gate = make(chan struct{})
	}
	n.mu.Unlock()
}

func (n *node) unstall() {
	n.mu.Lock()
	if n.gate != nil {
		close(n.gate)
		n.gate = nil
	}
	n.mu.Unlock()
}

func (n *node) Init(ids []uint64, data []byte) error { return n.inner.Init(ids, data) }

func (n *node) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	n.mu.Lock()
	gate := n.gate
	n.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return n.inner.BatchAccess(reqs)
}

func (n *node) Export() (ids []uint64, data []byte, err error) { return n.inner.Export() }

func (n *node) Restore(ids []uint64, data []byte) error { return n.inner.Restore(ids, data) }

// member tracks the harness's deterministic view of one original group
// member. (Auto-heal may promote a spare in a member's place; events aimed
// at a replaced member are harmless no-ops on the group.)
type member struct {
	rep  *replica.Replica
	node *node

	killed, stalled bool
	rolled          bool
	rolledEpoch     int
}

type harness struct {
	cfg     Config
	rng     *rand.Rand
	sys     *core.System
	groups  []*replica.Group
	members [][]*member
	reg     *telemetry.Registry
	sup     *cluster.Supervisor

	ops     []history.Op
	perKey  []int
	res     *Result
	nextVal int
}

// Run executes one seeded chaos run: fault phase, recovery actions, and
// the convergence window, returning the checked result. Run never hangs: a
// stalled member is abandoned at the group's deadline, so every epoch —
// and thus every client op — completes.
func Run(cfg Config) (*Result, error) {
	cfg.fillDefaults()
	h := &harness{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		perKey: make([]int, cfg.Keys),
		res:    &Result{ConvergedAfter: -1},
	}
	if err := h.build(); err != nil {
		return nil, err
	}
	defer h.sys.Close()

	// Fault phase: seeded events at each epoch boundary, client ops inside.
	epoch := 0
	for ; epoch < cfg.Epochs; epoch++ {
		h.schedule(epoch)
		if err := h.runEpoch(epoch); err != nil {
			return nil, err
		}
	}

	// Recovery actions: the operator restarts every crashed node and every
	// wedged one comes back — the last faults the convergence clock starts
	// from. (Members replaced by a promoted spare rejoin nothing; the
	// group already healed around them.)
	for p, ms := range h.members {
		for i, m := range ms {
			if m.killed {
				m.rep.Recover()
				m.killed = false
				h.event(Event{Epoch: epoch, Kind: "restart", Part: p, Member: i})
			}
			if m.stalled {
				m.node.unstall()
				m.stalled = false
				h.event(Event{Epoch: epoch, Kind: "unstall", Part: p, Member: i})
			}
		}
	}

	// Convergence window: within K epochs every partition must be healthy —
	// stale members resynced (or replaced), no consecutive failures, all
	// replies fresh.
	for k := 1; k <= cfg.K; k++ {
		if err := h.runEpoch(epoch); err != nil {
			return nil, err
		}
		epoch++
		if h.converged() {
			h.res.ConvergedAfter = k
			break
		}
	}

	h.res.Linearizable = history.CheckLinearizable(map[uint64]string{}, h.ops)
	for _, g := range h.groups {
		h.res.GroupStats = append(h.res.GroupStats, g.Stats())
	}
	h.res.Health = h.sys.Health()
	h.sup.Close()
	h.res.SupStats = h.sup.Stats()
	h.res.Telemetry = h.reg.Snapshot(0)
	return h.res, nil
}

func (h *harness) build() error {
	cfg := h.cfg
	// One registry observes the whole stack; a supervisor (fed from core's
	// per-epoch health, promotion unused here — groups self-heal) runs its
	// failure detector alongside, so the soak can check that telemetry's
	// failover accounting never drifts from the supervisor's own.
	h.reg = telemetry.NewRegistry()
	h.sup = cluster.NewSupervisor(cfg.Parts, nil, cluster.Policy{})
	h.sup.Instrument(h.reg)
	subs := make([]core.SubORAMClient, cfg.Parts)
	for p := 0; p < cfg.Parts; p++ {
		n := cfg.F + cfg.R + 1
		reps := make([]*replica.Replica, n)
		ms := make([]*member, n)
		for i := range reps {
			nd := newNode(cfg.BlockSize)
			reps[i] = replica.NewReplica(nd)
			ms[i] = &member{rep: reps[i], node: nd}
		}
		g, err := replica.NewGroup(reps, nil, cfg.F, cfg.R)
		if err != nil {
			return err
		}
		g.SetTimeout(cfg.Timeout)
		g.SetAutoHeal(cfg.HealAfter)
		g.SetTelemetry(h.reg)
		for s := 0; s < cfg.Spares; s++ {
			g.AddSpare(replica.NewReplica(newNode(cfg.BlockSize)))
		}
		h.groups = append(h.groups, g)
		h.members = append(h.members, ms)
		subs[p] = g
	}
	sys, err := core.NewWithSubORAMs(core.Config{
		BlockSize: cfg.BlockSize, NumLoadBalancers: 1, Lambda: 32,
		Telemetry: h.reg,
	}, subs)
	if err != nil {
		return err
	}
	h.sys = sys
	ids := make([]uint64, cfg.Keys)
	for i := range ids {
		ids[i] = uint64(i)
	}
	return sys.Init(ids, make([]byte, cfg.Keys*cfg.BlockSize))
}

func (h *harness) event(e Event) {
	h.res.Events = append(h.res.Events, e)
	if h.cfg.Log != nil {
		h.cfg.Log("epoch %d: %s part %d member %d", e.Epoch, e.Kind, e.Part, e.Member)
	}
}

// crashActive counts concurrent crash-type faults (kill, stall) in a part;
// rollActive counts rollbacks not yet presumed healed. Both are computed
// from harness bookkeeping only, keeping the schedule deterministic.
func (h *harness) crashActive(p int) int {
	n := 0
	for _, m := range h.members[p] {
		if m.killed || m.stalled {
			n++
		}
	}
	return n
}

func (h *harness) rollActive(p, epoch int) int {
	n := 0
	for _, m := range h.members[p] {
		// A rollback is presumed repaired once auto-heal has had a full
		// threshold of epochs to resync the member. This is a scheduling
		// assumption, not a checked invariant; if heal is slower, the group
		// briefly exceeds its rollback budget and simply degrades (epoch
		// errors), which the history and convergence checks still cover.
		if m.rolled && epoch-m.rolledEpoch <= h.cfg.HealAfter+1 {
			n++
		} else if m.rolled {
			m.rolled = false
		}
	}
	return n
}

// schedule draws this epoch's fault events (0–2) from the seeded generator.
func (h *harness) schedule(epoch int) {
	for e := h.rng.Intn(3); e > 0; e-- {
		p := h.rng.Intn(h.cfg.Parts)
		i := h.rng.Intn(len(h.members[p]))
		m := h.members[p][i]
		switch {
		case m.killed:
			if h.rng.Intn(2) == 0 {
				m.rep.Recover()
				m.killed = false
				h.event(Event{Epoch: epoch, Kind: "restart", Part: p, Member: i})
			}
		case m.stalled:
			if h.rng.Intn(2) == 0 {
				m.node.unstall()
				m.stalled = false
				h.event(Event{Epoch: epoch, Kind: "unstall", Part: p, Member: i})
			}
		default:
			switch h.rng.Intn(3) {
			case 0:
				if h.crashActive(p) < h.cfg.F {
					m.rep.Fail()
					m.killed = true
					h.event(Event{Epoch: epoch, Kind: "kill", Part: p, Member: i})
				}
			case 1:
				if h.crashActive(p) < h.cfg.F {
					m.node.stall()
					m.stalled = true
					h.event(Event{Epoch: epoch, Kind: "stall", Part: p, Member: i})
				}
			case 2:
				if h.rollActive(p, epoch) < h.cfg.R {
					if err := m.rep.Rollback(); err == nil {
						m.rolled = true
						m.rolledEpoch = epoch
						h.event(Event{Epoch: epoch, Kind: "rollback", Part: p, Member: i})
					}
				}
			}
		}
	}
}

// runEpoch submits the epoch's client ops, flushes, and folds the outcomes
// into the recorded history.
func (h *harness) runEpoch(epoch int) error {
	type pendOp struct {
		op   history.Op
		wait func() ([]byte, bool, error)
	}
	var pend []pendOp
	for j := 0; j < h.cfg.OpsPerEpoch; j++ {
		key := uint64(h.rng.Intn(h.cfg.Keys))
		for h.perKey[key] >= 60 { // stay under the checker's per-register cap
			key = uint64(h.rng.Intn(h.cfg.Keys))
		}
		write := h.rng.Intn(2) == 0
		op := history.Op{Key: key, Write: write, Start: time.Now().UnixNano()}
		var wait func() ([]byte, bool, error)
		var err error
		if write {
			h.nextVal++
			op.Input = fmt.Sprintf("v%d", h.nextVal)
			// Batched writes return the epoch-start value, not the
			// immediate predecessor — exclude the output, keep the effect.
			op.IgnoreOutput = true
			wait, err = h.sys.WriteAsync(key, []byte(op.Input))
		} else {
			wait, err = h.sys.ReadAsync(key)
		}
		if err != nil {
			return fmt.Errorf("chaos: submit failed: %w", err)
		}
		h.perKey[key]++
		pend = append(pend, pendOp{op: op, wait: wait})
	}
	h.sys.Flush()
	h.sup.ObserveHealth(h.sys.Health())
	for _, p := range pend {
		v, found, err := p.wait()
		h.res.Ops++
		op := p.op
		op.End = time.Now().UnixNano()
		if err != nil {
			h.res.FailedOps++
			if !op.Write {
				// A failed read observed nothing and has no effect: drop it.
				continue
			}
			// A failed write is indeterminate — the batch may have executed
			// on surviving replicas before the quorum was lost. Record it as
			// free to linearize at any later point (unbounded end time): the
			// checker then accepts both outcomes but still rejects impossible
			// ones (e.g. the value appearing and later un-appearing).
			op.End = math.MaxInt64
			h.ops = append(h.ops, op)
			continue
		}
		if !op.Write {
			if found {
				op.Output = string(bytes.TrimRight(v, "\x00"))
			}
		}
		h.ops = append(h.ops, op)
	}
	return nil
}

// converged reports the invariant: core sees no failing or repairing
// partition, and every group's last batch got fresh replies from all
// members.
func (h *harness) converged() bool {
	if !h.sys.Health().Healthy() {
		return false
	}
	for _, g := range h.groups {
		st := g.Stats()
		if st.Fresh != st.Members {
			return false
		}
	}
	return true
}
