// Root-failover chaos: a deterministic, seeded harness for the sealed
// epoch journal, standby-root promotion, and end-to-end exactly-once
// replies. Where the partition harness (chaos.go) drives replica-layer
// faults under a healthy root, this one kills the root itself — at the
// three crash points the journal protocol distinguishes (before the
// journal write, after it, and after dispatch but before replies) — and
// lets a cluster.Supervisor promote a standby over the same journal
// directory while clients retry unanswered requests under their original
// idempotency IDs.
//
// Checked invariants, all timing-independent:
//
//   - the recorded client history is linearizable (internal/history),
//     with replayed answers attributed to their full submit→reply window;
//   - every tracked request is answered exactly once: retries of
//     unanswered requests produce exactly one answer (journal replay or
//     fresh execution, never both), and deliberate duplicate retries of
//     answered requests return byte-identical parked answers that the
//     client-side ReplyDedup window suppresses;
//   - every root crash is matched by exactly one supervisor promotion,
//     with a measured time-to-recovery.
//
// The schedule is a pure function of RootConfig.Seed plus the explicit
// Crashes plan, exactly as in the partition harness: which epoch crashes
// the root at which point, and which partition dies for how long, depend
// only on the seeded generator and harness bookkeeping.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"snoopy/internal/cluster"
	"snoopy/internal/core"
	"snoopy/internal/history"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/telemetry"
	"snoopy/internal/transport"
)

// crashPoints are the journal-protocol crash sites core exposes for
// tests, in increasing order of how much of the epoch survives the root.
var crashPoints = []string{"stage-a", "journal", "dispatch"}

// RootConfig parameterizes one root-failover chaos run. The zero value
// gets defaults; Seed alone distinguishes runs. Dir is required: it is
// the journal directory every root incarnation shares.
type RootConfig struct {
	// Parts is the number of partitions (plain subORAMs behind shared
	// replay caches — partition replication is chaos.go's subject).
	Parts int
	// Keys is the object count; BlockSize the value size.
	Keys, BlockSize int
	// Epochs is the fault phase length; OpsPerEpoch the client load.
	Epochs, OpsPerEpoch int
	// Seed drives the event schedule and the workload.
	Seed int64
	// Dir is the sealed journal directory shared by all root
	// incarnations (typically t.TempDir()). Required.
	Dir string
	// Crashes, when non-nil, pins a crash point to an epoch (1-based
	// harness epoch → one of "stage-a" | "journal" | "dispatch"),
	// overriding the seeded draw for those epochs. Tests use it to cover
	// every crash site deterministically.
	Crashes map[int]string
	// Log, when non-nil, narrates events (e.g. t.Logf).
	Log func(format string, args ...any)
}

func (c *RootConfig) fillDefaults() {
	if c.Parts <= 0 {
		c.Parts = 3
	}
	if c.Keys <= 0 {
		c.Keys = 16
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 12
	}
	if c.OpsPerEpoch <= 0 {
		c.OpsPerEpoch = 6
	}
}

// RootEvent is one scheduled fault or recovery action in a root run.
type RootEvent struct {
	Epoch int
	Kind  string // "crash-root@<point>" | "kill-part" | "revive-part" | "promote" | "dup-retry"
	Part  int    // partition for kill/revive, else -1
}

// RootResult summarizes one root-failover run.
type RootResult struct {
	// Ops is the number of tracked client requests issued; Retries the
	// number of re-submissions of unanswered requests (same idempotency
	// ID); FailedAttempts the number of submissions that returned an
	// error (root down or partition down) before the retry succeeded.
	Ops, Retries, FailedAttempts int
	// Duplicates counts deliberate duplicate retries of already-answered
	// requests whose second answer the ReplyDedup window suppressed.
	Duplicates int
	// RootCrashes is the number of root kills; Unanswered the number of
	// tracked requests still unanswered after the drain phase (0 on a
	// passing run).
	RootCrashes, Unanswered int
	// Events is the full schedule that ran, in order.
	Events []RootEvent
	// Linearizable is the history.CheckLinearizable verdict.
	Linearizable bool
	// ExactlyOnce reports the reply invariant: every tracked request was
	// answered exactly once, and every duplicate answer was suppressed
	// and byte-identical to the first.
	ExactlyOnce bool
	// SupStats carries the supervisor's root-plane accounting (trips,
	// promotions, time-to-recovery).
	SupStats cluster.Stats
	// Telemetry is the final registry snapshot, for drift checks against
	// SupStats.
	Telemetry telemetry.Snapshot
}

var errPartDown = errors.New("chaos: partition down")

// killPart is a plain subORAM with a kill switch: while down, every batch
// errors before touching state, modeling a crashed partition server whose
// replay cache and store survive (the gate sits inside the partition, so
// the LocalTagged wrapper still consumes its delivery sequence and the
// root's journaled tag predictions stay aligned).
type killPart struct {
	inner *suboram.SubORAM
	down  atomic.Bool
}

func (p *killPart) Init(ids []uint64, data []byte) error { return p.inner.Init(ids, data) }

func (p *killPart) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	if p.down.Load() {
		return nil, errPartDown
	}
	return p.inner.BatchAccess(reqs)
}

// rootPend is one tracked request awaiting its answer, carried across
// epochs (and root incarnations) until answered.
type rootPend struct {
	id   uint64
	op   history.Op
	wait func() ([]byte, bool, error)
}

type rootHarness struct {
	cfg RootConfig
	rng *rand.Rand
	res *RootResult

	parts []*killPart
	rcs   []*transport.ReplayCache
	reg   *telemetry.Registry
	sup   *cluster.Supervisor

	// armed is the crash point the next Flush fires, shared by every
	// incarnation's TestCrashPoint hook; fired once then cleared.
	mu    sync.Mutex
	armed string

	dedup    *transport.ReplyDedup
	answered map[uint64]int    // successful answers per tracked ID
	firstAns map[uint64]string // first answer, for duplicate comparison

	downUntil []int // partition revival epoch, 0 = up

	ops     []history.Op
	perKey  []int
	pending []rootPend
	nextID  uint64
	nextVal int
	exactly bool
}

// RunRoot executes one seeded root-failover chaos run and returns the
// checked result. Run never hangs: crashed roots answer every in-flight
// wait with ErrRootDown, promotions are awaited under a deadline, and the
// drain phase is bounded.
func RunRoot(cfg RootConfig) (*RootResult, error) {
	cfg.fillDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: RootConfig.Dir (journal directory) is required")
	}
	h := &rootHarness{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		res:       &RootResult{},
		dedup:     transport.NewReplyDedup(0),
		answered:  make(map[uint64]int),
		firstAns:  make(map[uint64]string),
		downUntil: make([]int, cfg.Parts),
		perKey:    make([]int, cfg.Keys),
		nextID:    1,
		exactly:   true,
	}
	if err := h.build(); err != nil {
		return nil, err
	}
	defer func() {
		h.sup.Close()
		if cur := h.sup.Root(); cur != nil {
			cur.Close()
		}
	}()

	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		h.schedule(epoch)
		if err := h.runEpoch(epoch, true); err != nil {
			return nil, err
		}
	}
	if err := h.drain(); err != nil {
		return nil, err
	}

	// Requests still unanswered after the drain: failed writes are
	// indeterminate (free to linearize at any later point), failed reads
	// observed nothing and are dropped — the same conventions as the
	// partition harness. Any of them is an exactly-once violation.
	for _, p := range h.pending {
		h.res.Unanswered++
		h.exactly = false
		if p.op.Write {
			op := p.op
			op.End = math.MaxInt64
			h.ops = append(h.ops, op)
		}
	}
	for id, n := range h.answered {
		if n != 1 {
			h.exactly = false
			if cfg.Log != nil {
				cfg.Log("request %d answered %d times", id, n)
			}
		}
	}
	h.res.ExactlyOnce = h.exactly
	h.res.Linearizable = history.CheckLinearizable(map[uint64]string{}, h.ops)
	h.sup.Close()
	h.res.SupStats = h.sup.Stats()
	h.res.Telemetry = h.reg.Snapshot(0)
	return h.res, nil
}

func (h *rootHarness) build() error {
	cfg := h.cfg
	for p := 0; p < cfg.Parts; p++ {
		h.parts = append(h.parts, &killPart{inner: suboram.New(suboram.Config{BlockSize: cfg.BlockSize})})
		h.rcs = append(h.rcs, transport.NewReplayCache())
	}
	root, err := h.newRoot()
	if err != nil {
		return err
	}
	ids := make([]uint64, cfg.Keys)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if err := root.Init(ids, make([]byte, cfg.Keys*cfg.BlockSize)); err != nil {
		root.Close()
		return err
	}
	h.reg = telemetry.NewRegistry()
	h.sup = cluster.NewSupervisor(cfg.Parts, nil, cluster.Policy{
		FailAfter: 1, ProbeInterval: time.Millisecond,
	})
	h.sup.Instrument(h.reg)
	h.sup.SuperviseRoot(root, func(old *core.System) (*core.System, error) {
		if old != nil {
			old.Close()
		}
		return h.newRoot()
	})
	return nil
}

// newRoot opens one root incarnation over the shared journal directory
// and replay caches. Opening replays any journaled-but-incomplete epochs
// left by a crashed predecessor.
func (h *rootHarness) newRoot() (*core.System, error) {
	clients := make([]core.SubORAMClient, len(h.parts))
	for i := range h.parts {
		clients[i] = transport.NewLocalTagged(h.parts[i], h.rcs[i])
	}
	return core.NewWithSubORAMs(core.Config{
		BlockSize:        h.cfg.BlockSize,
		NumLoadBalancers: 2,
		Lambda:           32,
		JournalDir:       h.cfg.Dir,
		TestCrashPoint:   h.crashHook,
	}, clients)
}

// crashHook is the TestCrashPoint shared by every incarnation: it fires
// the armed point once, then disarms.
func (h *rootHarness) crashHook(point string, _ uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if point != "" && point == h.armed {
		h.armed = ""
		return true
	}
	return false
}

func (h *rootHarness) arm(point string) {
	h.mu.Lock()
	h.armed = point
	h.mu.Unlock()
}

func (h *rootHarness) event(e RootEvent) {
	h.res.Events = append(h.res.Events, e)
	if h.cfg.Log != nil {
		h.cfg.Log("epoch %d: %s part %d", e.Epoch, e.Kind, e.Part)
	}
}

// schedule draws this epoch's fault from the seeded generator (or the
// explicit Crashes plan): revive due partitions, then with seeded odds
// either arm a root crash at one of the three journal-protocol points or
// kill one partition for two epochs. All decisions depend only on the
// generator and harness bookkeeping, never on runtime outcomes, so a
// seed replays exactly.
func (h *rootHarness) schedule(epoch int) {
	for p := range h.downUntil {
		if h.downUntil[p] != 0 && h.downUntil[p] <= epoch {
			h.downUntil[p] = 0
			h.parts[p].down.Store(false)
			h.event(RootEvent{Epoch: epoch, Kind: "revive-part", Part: p})
		}
	}
	// Draw unconditionally so the generator stream does not depend on the
	// explicit plan.
	roll, point, part := h.rng.Intn(6), h.rng.Intn(len(crashPoints)), h.rng.Intn(h.cfg.Parts)
	if forced, ok := h.cfg.Crashes[epoch]; ok {
		h.arm(forced)
		h.event(RootEvent{Epoch: epoch, Kind: "crash-root@" + forced, Part: -1})
		return
	}
	switch {
	case roll <= 1: // ~1/3 of epochs: root crash
		h.arm(crashPoints[point])
		h.event(RootEvent{Epoch: epoch, Kind: "crash-root@" + crashPoints[point], Part: -1})
	case roll == 2: // ~1/6: partition outage for two epochs
		if h.downUntil[part] == 0 {
			h.downUntil[part] = epoch + 2
			h.parts[part].down.Store(true)
			h.event(RootEvent{Epoch: epoch, Kind: "kill-part", Part: part})
		}
	}
}

// submit sends one tracked request to sys, preserving the pend's
// idempotency ID and history window across retries.
func (h *rootHarness) submit(sys *core.System, p *rootPend) error {
	var err error
	if p.op.Write {
		p.wait, err = sys.WriteIdemAsync(p.id, p.op.Key, []byte(p.op.Input))
	} else {
		p.wait, err = sys.ReadIdemAsync(p.id, p.op.Key)
	}
	if err != nil {
		// Root crashed between promotion and submit: keep the pend, a
		// later round retries it.
		p.wait = nil
		h.res.FailedAttempts++
	}
	return nil
}

// runEpoch resubmits carried-over pends, adds fresh client ops (during
// the fault phase), flushes the current root, and folds the outcomes into
// the history. A root crash during the flush is detected here, reported
// to the supervisor, and the promoted standby awaited before returning.
func (h *rootHarness) runEpoch(epoch int, fresh bool) error {
	cur := h.sup.Root()
	round := h.pending
	h.pending = nil
	for i := range round {
		h.res.Retries++
		if err := h.submit(cur, &round[i]); err != nil {
			return err
		}
	}
	if fresh {
		for j := 0; j < h.cfg.OpsPerEpoch; j++ {
			key := uint64(h.rng.Intn(h.cfg.Keys))
			for h.perKey[key] >= 60 { // stay under the checker's per-register cap
				key = uint64(h.rng.Intn(h.cfg.Keys))
			}
			write := h.rng.Intn(2) == 0
			op := history.Op{Key: key, Write: write, Start: time.Now().UnixNano()}
			if write {
				h.nextVal++
				op.Input = fmt.Sprintf("r%d", h.nextVal)
				// Batched writes return the epoch-start value, not an echo.
				op.IgnoreOutput = true
			}
			h.perKey[key]++
			h.res.Ops++
			p := rootPend{id: h.nextID, op: op}
			h.nextID++
			if err := h.submit(cur, &p); err != nil {
				return err
			}
			round = append(round, p)
		}
	}
	cur.Flush()
	crashed := cur.Crashed()
	h.sup.ObserveRootHealth(!crashed)
	if crashed {
		h.res.RootCrashes++
		if err := h.awaitPromotion(cur); err != nil {
			return err
		}
		h.event(RootEvent{Epoch: epoch, Kind: "promote", Part: -1})
	}
	for i := range round {
		h.collect(cur, &round[i])
	}
	return nil
}

// collect resolves one pend's outcome: an answer is recorded in the
// history and counted against the exactly-once invariant (with a
// deterministic subset immediately re-asked to exercise the duplicate
// path); an error keeps the pend for the next round's retry.
func (h *rootHarness) collect(cur *core.System, p *rootPend) {
	if p.wait == nil {
		h.pending = append(h.pending, *p)
		return
	}
	v, found, err := p.wait()
	p.wait = nil
	if err != nil {
		h.res.FailedAttempts++
		h.pending = append(h.pending, *p)
		return
	}
	ans := ""
	if found {
		ans = string(bytes.TrimRight(v, "\x00"))
	}
	h.answered[p.id]++
	if !h.dedup.Deliver(p.id) {
		// We only wait once per attempt and never retry answered IDs, so
		// a suppressed first delivery means the window lied.
		h.exactly = false
	}
	h.firstAns[p.id] = ans
	op := p.op
	op.End = time.Now().UnixNano()
	if !op.Write {
		op.Output = ans
	}
	h.ops = append(h.ops, op)

	// Deliberate duplicate: re-ask a deterministic subset of answered
	// requests under the same ID, modeling a reply lost between root and
	// client. The parked answer must be byte-identical and the client
	// window must suppress the second delivery.
	if p.id%5 == 3 && !cur.Crashed() {
		h.dupRetry(cur, p, ans, found)
	}
}

func (h *rootHarness) dupRetry(cur *core.System, p *rootPend, ans string, found bool) {
	var v2 []byte
	var found2 bool
	var err error
	if p.op.Write {
		v2, found2, err = cur.WriteIdem(p.id, p.op.Key, []byte(p.op.Input))
	} else {
		v2, found2, err = cur.ReadIdem(p.id, p.op.Key)
	}
	if err != nil {
		// The root died between the answer and the duplicate; nothing to
		// check — the original answer already counted.
		return
	}
	ans2 := ""
	if found2 {
		ans2 = string(bytes.TrimRight(v2, "\x00"))
	}
	if ans2 != ans || found2 != found {
		h.exactly = false
		if h.cfg.Log != nil {
			h.cfg.Log("request %d: duplicate answer %q/%v differs from first %q/%v",
				p.id, ans2, found2, ans, found)
		}
	}
	if h.dedup.Deliver(p.id) {
		h.exactly = false // the window must suppress the second delivery
	} else {
		h.res.Duplicates++
	}
	h.event(RootEvent{Epoch: 0, Kind: "dup-retry", Part: -1})
}

// awaitPromotion blocks until the supervisor serves a root other than the
// crashed one, under a generous deadline (the promotion loop itself
// retries every ProbeInterval).
func (h *rootHarness) awaitPromotion(dead *core.System) error {
	limit := 30 * time.Second
	if raceEnabled {
		limit = 90 * time.Second
	}
	deadline := time.Now().Add(limit)
	for {
		if cur := h.sup.Root(); cur != nil && cur != dead && !h.sup.RootDown() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: standby never promoted: %v", h.sup.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// drain retires every outstanding request after the fault phase: faults
// are cleared (partitions revived, crash hook disarmed) and retry rounds
// run until no pend remains or the bounded budget runs out.
func (h *rootHarness) drain() error {
	h.arm("")
	for p := range h.parts {
		if h.downUntil[p] != 0 {
			h.downUntil[p] = 0
			h.parts[p].down.Store(false)
			h.event(RootEvent{Epoch: h.cfg.Epochs + 1, Kind: "revive-part", Part: p})
		}
	}
	for round := 0; round < 8 && len(h.pending) > 0; round++ {
		if err := h.runEpoch(h.cfg.Epochs+1+round, false); err != nil {
			return err
		}
	}
	return nil
}
