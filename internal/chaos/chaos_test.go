package chaos

import (
	"os"
	"testing"
)

// checkRun asserts the harness's two invariants for one seed: the client
// history is linearizable through every fault, and the cluster converges
// back to fully healthy within the K-epoch budget after the last fault.
func checkRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
	if !res.Linearizable {
		t.Fatalf("seed %d: history not linearizable (%d ops, %d failed, events %v)",
			cfg.Seed, res.Ops, res.FailedOps, res.Events)
	}
	if res.ConvergedAfter < 0 {
		t.Fatalf("seed %d: cluster never converged within K epochs of the last fault: health=%+v groups=%+v",
			cfg.Seed, res.Health, res.GroupStats)
	}
	if res.Ops == 0 {
		t.Fatalf("seed %d: no operations ran", cfg.Seed)
	}
	checkTelemetryAccounting(t, cfg.Seed, res)
	return res
}

// checkTelemetryAccounting asserts that the telemetry registry's failover
// and replication counters match, exactly, the accounting the components
// keep for themselves (Supervisor.Stats, replica.GroupStats,
// core.HealthStats). Telemetry is an export path over the same events — any
// drift means a recording site was added, dropped, or double-fired.
func checkTelemetryAccounting(t *testing.T, seed int64, res *Result) {
	t.Helper()
	c := res.Telemetry.Counters

	if got, want := c["cluster_detector_trips_total"], res.SupStats.Trips; got != want {
		t.Fatalf("seed %d: telemetry reports %d detector trips, supervisor counted %d", seed, got, want)
	}
	if got, want := c["cluster_promotions_total"], res.SupStats.Promotions; got != want {
		t.Fatalf("seed %d: telemetry reports %d promotions, supervisor counted %d", seed, got, want)
	}
	if got, want := c["cluster_promotion_failures_total"], res.SupStats.PromotionFailures; got != want {
		t.Fatalf("seed %d: telemetry reports %d promotion failures, supervisor counted %d", seed, got, want)
	}
	var recoveries uint64
	for _, h := range res.Telemetry.Histograms {
		if h.Name == "cluster_time_to_recovery" {
			recoveries = h.Count
		}
	}
	if got, want := recoveries, uint64(res.SupStats.Recoveries); got != want {
		t.Fatalf("seed %d: telemetry recorded %d recoveries, supervisor counted %d", seed, got, want)
	}

	var stale, busy, resyncs, resyncBytes, promos uint64
	for _, g := range res.GroupStats {
		stale += g.StaleReplies
		busy += g.BusySkips
		resyncs += g.Resyncs
		resyncBytes += g.ResyncBytes
		promos += g.Promotions
	}
	for name, want := range map[string]uint64{
		"replica_stale_replies_total": stale,
		"replica_busy_skips_total":    busy,
		"replica_resyncs_total":       resyncs,
		"replica_resync_bytes_total":  resyncBytes,
		"replica_promotions_total":    promos,
	} {
		if got := c[name]; got != want {
			t.Fatalf("seed %d: telemetry %s=%d, group stats say %d (groups=%+v)",
				seed, name, got, want, res.GroupStats)
		}
	}

	var partFails uint64
	for _, n := range res.Health.TotalFailures {
		partFails += n
	}
	if got := c["core_partition_epoch_failures_total"]; got != partFails {
		t.Fatalf("seed %d: telemetry counted %d partition epoch failures, core counted %d",
			seed, got, partFails)
	}
	var failovers uint64
	for _, n := range res.Health.Failovers {
		failovers += n
	}
	if got := c["core_failovers_total"]; got != failovers {
		t.Fatalf("seed %d: telemetry counted %d failovers, core counted %d", seed, got, failovers)
	}
}

func TestChaosSeededRuns(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		seed := seed
		res := checkRun(t, Config{Seed: seed, Log: t.Logf})
		if len(res.Events) == 0 {
			t.Fatalf("seed %d: schedule produced no fault events", seed)
		}
		t.Logf("seed %d: ops=%d failed=%d events=%d converged_after=%d groups=%+v",
			seed, res.Ops, res.FailedOps, len(res.Events), res.ConvergedAfter, res.GroupStats)
	}
}

// TestChaosSelfHealingObserved picks a seed whose schedule includes
// rollbacks and kills and checks the repair machinery actually engaged:
// stale replies were rejected and at least one resync or promotion ran.
func TestChaosSelfHealingObserved(t *testing.T) {
	res := checkRun(t, Config{Seed: 3, Epochs: 32})
	kinds := map[string]int{}
	for _, e := range res.Events {
		kinds[e.Kind]++
	}
	if kinds["kill"]+kinds["stall"]+kinds["rollback"] == 0 {
		t.Fatalf("no fault events in schedule: %v", res.Events)
	}
	var repaired uint64
	for _, g := range res.GroupStats {
		repaired += g.Resyncs + g.Promotions
	}
	if repaired == 0 {
		t.Fatalf("faults ran but no resync or promotion happened: events=%v groups=%+v",
			kinds, res.GroupStats)
	}
}

// TestChaosScheduleDeterministic replays a seed and requires the identical
// event schedule — the property that makes a failing seed debuggable.
func TestChaosScheduleDeterministic(t *testing.T) {
	a, err := Run(Config{Seed: 11, Epochs: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 11, Epochs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestChaosSoak is the long soak (scripts/chaos.sh): many seeds, longer
// fault phases. Out of the tier-1 budget; gate on SNOOPY_CHAOS_SOAK=1.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("SNOOPY_CHAOS_SOAK") == "" {
		t.Skip("set SNOOPY_CHAOS_SOAK=1 to run the long chaos soak")
	}
	for seed := int64(1); seed <= 16; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			res := checkRun(t, Config{Seed: seed, Epochs: 64, Parts: 3, OpsPerEpoch: 8, Keys: 32})
			t.Logf("seed %d: ops=%d failed=%d events=%d converged_after=%d",
				seed, res.Ops, res.FailedOps, len(res.Events), res.ConvergedAfter)
		})
	}
}
