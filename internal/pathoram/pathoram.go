// Package pathoram implements Path ORAM (Stefanov et al., CCS'13), the
// tree-based ORAM that underlies two of the paper's baselines: Oblix's
// doubly-oblivious ORAM (internal/oblix) and — via Ring ORAM — Obladi
// (internal/ringoram, internal/obladi).
//
// This implementation follows the original client/server split: the server
// holds a complete binary tree of Z-slot buckets; the client holds the
// position map and stash. Per access it reads one root-to-leaf path,
// remaps the block to a fresh random leaf, and writes the path back with
// greedy eviction.
//
// Baseline scope note (DESIGN.md §2): baselines reproduce the algorithms'
// *cost structure* — the same blocks are moved, the same paths are touched,
// counted by ServerBytesMoved — while client metadata uses plain Go
// structures. The paper's own Obladi baseline runs its proxy un-obliviously
// on a trusted machine, so this matches the original evaluation setup.
package pathoram

import (
	"fmt"
	"math/rand"
	"sync"
)

// Z is the bucket capacity used throughout (the standard Path ORAM choice).
const Z = 4

type block struct {
	id   uint32 // dense block index
	leaf uint32
	data []byte
}

// ORAM is a single Path ORAM instance over n fixed-size blocks with dense
// indices 0..n-1.
type ORAM struct {
	mu        sync.Mutex
	blockSize int
	n         int
	height    int // tree height; leaves at level height
	nLeaves   int

	buckets [][]blockSlot // len 2^(height+1)-1, each up to Z slots
	pos     []uint32      // client: block index -> leaf
	stash   map[uint32]*block
	rng     *rand.Rand

	bytesMoved uint64
	accesses   uint64
}

type blockSlot struct {
	occupied bool
	blk      block
}

// New creates a Path ORAM holding n zeroed blocks.
func New(n, blockSize int) (*ORAM, error) {
	if n <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("pathoram: invalid geometry n=%d block=%d", n, blockSize)
	}
	height := 0
	for 1<<height < n {
		height++
	}
	o := &ORAM{
		blockSize: blockSize,
		n:         n,
		height:    height,
		nLeaves:   1 << height,
		buckets:   make([][]blockSlot, (1<<(height+1))-1),
		pos:       make([]uint32, n),
		stash:     make(map[uint32]*block),
		rng:       rand.New(rand.NewSource(rand.Int63())),
	}
	for i := range o.buckets {
		o.buckets[i] = make([]blockSlot, Z)
	}
	// Lazy initialization: blocks not yet written live nowhere and read as
	// zero. Assign random leaves up front.
	for i := range o.pos {
		o.pos[i] = uint32(o.rng.Intn(o.nLeaves))
	}
	return o, nil
}

// NumBlocks returns n.
func (o *ORAM) NumBlocks() int { return o.n }

// BlockSize returns the block size.
func (o *ORAM) BlockSize() int { return o.blockSize }

// Height returns the tree height (path length is Height+1 buckets).
func (o *ORAM) Height() int { return o.height }

// pathNodes returns the bucket indices from root to the given leaf.
func (o *ORAM) pathNodes(leaf uint32) []int {
	nodes := make([]int, o.height+1)
	idx := int(leaf) + o.nLeaves - 1 // leaf node index in heap order
	for l := o.height; l >= 0; l-- {
		nodes[l] = idx
		idx = (idx - 1) / 2
	}
	return nodes
}

// Access performs one ORAM access. If write is true the block is replaced
// with data; the returned slice is the block's previous value. id must be
// below NumBlocks.
func (o *ORAM) Access(write bool, id uint32, data []byte) ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if int(id) >= o.n {
		return nil, fmt.Errorf("pathoram: block %d out of range", id)
	}
	o.accesses++

	// 1. Remap.
	oldLeaf := o.pos[id]
	o.pos[id] = uint32(o.rng.Intn(o.nLeaves))

	// 2. Read path into stash.
	nodes := o.pathNodes(oldLeaf)
	for _, b := range nodes {
		for s := range o.buckets[b] {
			if o.buckets[b][s].occupied {
				blk := o.buckets[b][s].blk
				o.buckets[b][s].occupied = false
				o.stash[blk.id] = &block{id: blk.id, leaf: blk.leaf, data: blk.data}
			}
		}
	}
	o.bytesMoved += uint64(len(nodes) * Z * o.blockSize)

	// 3. Serve the request from the stash.
	target, ok := o.stash[id]
	if !ok {
		target = &block{id: id, data: make([]byte, o.blockSize)}
		o.stash[id] = target
	}
	prev := append([]byte(nil), target.data...)
	if write {
		copy(target.data, data)
		for i := len(data); i < o.blockSize; i++ {
			target.data[i] = 0
		}
		if len(target.data) == 0 {
			target.data = make([]byte, o.blockSize)
		}
	}
	target.leaf = o.pos[id]

	// 4. Write the path back, evicting greedily from leaf to root.
	o.evictPath(nodes, oldLeaf)
	o.bytesMoved += uint64(len(nodes) * Z * o.blockSize)
	return prev, nil
}

// evictPath greedily places stash blocks into the path's buckets, deepest
// first.
func (o *ORAM) evictPath(nodes []int, leaf uint32) {
	for l := len(nodes) - 1; l >= 0; l-- {
		b := nodes[l]
		free := 0
		for s := range o.buckets[b] {
			if !o.buckets[b][s].occupied {
				free++
			}
		}
		if free == 0 {
			continue
		}
		for id, blk := range o.stash {
			if free == 0 {
				break
			}
			if !o.pathIntersects(blk.leaf, leaf, l) {
				continue
			}
			for s := range o.buckets[b] {
				if !o.buckets[b][s].occupied {
					o.buckets[b][s] = blockSlot{occupied: true, blk: *blk}
					delete(o.stash, id)
					free--
					break
				}
			}
		}
	}
}

// pathIntersects reports whether the path to leafA passes through the
// level-l node of the path to leafB.
func (o *ORAM) pathIntersects(leafA, leafB uint32, level int) bool {
	return leafA>>(o.height-level) == leafB>>(o.height-level)
}

// StashSize returns the client stash occupancy (should stay small w.h.p.).
func (o *ORAM) StashSize() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.stash)
}

// ServerBytesMoved returns cumulative server traffic, the baseline cost
// metric.
func (o *ORAM) ServerBytesMoved() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.bytesMoved
}

// Accesses returns the number of completed accesses.
func (o *ORAM) Accesses() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.accesses
}
