package pathoram

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestReadUnwrittenIsZero(t *testing.T) {
	o, err := New(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	v, err := o.Access(false, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, make([]byte, 16)) {
		t.Fatalf("unwritten block not zero: %v", v)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	o, _ := New(64, 16)
	if _, err := o.Access(true, 9, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, _ := o.Access(false, 9, nil)
	if !bytes.HasPrefix(v, []byte("hello")) {
		t.Fatalf("round trip lost data: %q", v)
	}
}

func TestWriteReturnsPrevious(t *testing.T) {
	o, _ := New(16, 8)
	o.Access(true, 3, []byte("one"))
	prev, _ := o.Access(true, 3, []byte("two"))
	if !bytes.HasPrefix(prev, []byte("one")) {
		t.Fatalf("write should return previous value, got %q", prev)
	}
}

func TestOutOfRange(t *testing.T) {
	o, _ := New(8, 8)
	if _, err := o.Access(false, 8, nil); err == nil {
		t.Fatal("out-of-range access accepted")
	}
}

func TestRandomizedAgainstShadow(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	const n = 200
	o, _ := New(n, 16)
	shadow := make([][]byte, n)
	for i := range shadow {
		shadow[i] = make([]byte, 16)
	}
	for step := 0; step < 4000; step++ {
		id := uint32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			val := []byte(fmt.Sprintf("s%d", step))
			if _, err := o.Access(true, id, val); err != nil {
				t.Fatal(err)
			}
			b := make([]byte, 16)
			copy(b, val)
			shadow[id] = b
		} else {
			v, err := o.Access(false, id, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(v, shadow[id]) {
				t.Fatalf("step %d id %d: got %q want %q", step, id, v, shadow[id])
			}
		}
	}
}

func TestStashStaysBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n = 1024
	o, _ := New(n, 8)
	maxStash := 0
	for step := 0; step < 20000; step++ {
		id := uint32(rng.Intn(n))
		o.Access(true, id, []byte{byte(step)})
		if s := o.StashSize(); s > maxStash {
			maxStash = s
		}
	}
	// Path ORAM stash is O(log n) w.h.p.; anything near n means eviction
	// is broken.
	if maxStash > 150 {
		t.Fatalf("stash grew to %d — eviction broken", maxStash)
	}
}

func TestServerTrafficAccounting(t *testing.T) {
	o, _ := New(256, 32)
	o.Access(false, 0, nil)
	per := o.ServerBytesMoved()
	want := uint64(2 * (o.Height() + 1) * Z * 32) // read + write one path
	if per != want {
		t.Fatalf("per-access traffic %d, want %d", per, want)
	}
	if o.Accesses() != 1 {
		t.Fatal("access counter wrong")
	}
}

func TestAccessWithPosRoundTrip(t *testing.T) {
	// The external-position primitive recursive ORAMs use: the caller owns
	// the position map.
	o, _ := New(64, 8)
	pos := make([]uint32, 64)
	rng := rand.New(rand.NewSource(72))
	shadow := make([][]byte, 64)
	for i := range shadow {
		shadow[i] = make([]byte, 8)
	}
	for step := 0; step < 2000; step++ {
		id := uint32(rng.Intn(64))
		newLeaf := uint32(rng.Intn(o.NumLeaves()))
		write := rng.Intn(2) == 0
		val := []byte{byte(step), byte(step >> 8)}
		out, err := o.AccessWithPos(id, pos[id], newLeaf, func(b []byte) {
			if write {
				copy(b, val)
				for k := 2; k < len(b); k++ {
					b[k] = 0
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !write && !bytes.Equal(out, shadow[id]) {
			t.Fatalf("step %d id %d: got %v want %v", step, id, out, shadow[id])
		}
		if write {
			b := make([]byte, 8)
			copy(b, val)
			shadow[id] = b
		}
		pos[id] = newLeaf
	}
}

func TestAccessWithPosValidation(t *testing.T) {
	o, _ := New(8, 8)
	if _, err := o.AccessWithPos(99, 0, 0, nil); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := o.AccessWithPos(0, uint32(o.NumLeaves()), 0, nil); err == nil {
		t.Fatal("out-of-range old leaf accepted")
	}
	if _, err := o.AccessWithPos(0, 0, uint32(o.NumLeaves()), nil); err == nil {
		t.Fatal("out-of-range new leaf accepted")
	}
}
