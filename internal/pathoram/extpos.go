package pathoram

import "fmt"

// AccessWithPos performs one access with caller-managed position state:
// the caller supplies the block's current leaf and the fresh leaf it is
// being remapped to. This is the primitive recursive ORAMs build on — the
// position map itself lives in the next ORAM level (internal/oblix), so
// this instance's internal map is bypassed.
//
// mutate is applied to the block's current contents in place (nil for pure
// reads); the returned slice is a copy of the contents after mutate.
func (o *ORAM) AccessWithPos(id uint32, oldLeaf, newLeaf uint32, mutate func([]byte)) ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if int(id) >= o.n {
		return nil, fmt.Errorf("pathoram: block %d out of range", id)
	}
	if int(oldLeaf) >= o.nLeaves || int(newLeaf) >= o.nLeaves {
		return nil, fmt.Errorf("pathoram: leaf out of range")
	}
	o.accesses++

	nodes := o.pathNodes(oldLeaf)
	for _, b := range nodes {
		for s := range o.buckets[b] {
			if o.buckets[b][s].occupied {
				blk := o.buckets[b][s].blk
				o.buckets[b][s].occupied = false
				o.stash[blk.id] = &block{id: blk.id, leaf: blk.leaf, data: blk.data}
			}
		}
	}
	o.bytesMoved += uint64(len(nodes) * Z * o.blockSize)

	target, ok := o.stash[id]
	if !ok {
		target = &block{id: id, data: make([]byte, o.blockSize)}
		o.stash[id] = target
	}
	if mutate != nil {
		mutate(target.data)
	}
	out := append([]byte(nil), target.data...)
	target.leaf = newLeaf

	o.evictPath(nodes, oldLeaf)
	o.bytesMoved += uint64(len(nodes) * Z * o.blockSize)
	return out, nil
}

// NumLeaves returns the leaf count (valid leaves are [0, NumLeaves)).
func (o *ORAM) NumLeaves() int { return o.nLeaves }
