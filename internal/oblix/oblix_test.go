package oblix

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"snoopy/internal/store"
)

func TestDORAMRoundTrip(t *testing.T) {
	d, err := New(500, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.Levels() < 2 {
		t.Fatalf("500 blocks at fanout 4 should recurse ≥2 levels, got %d", d.Levels())
	}
	if _, err := d.Access(true, 123, []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, err := d.Access(false, 123, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v, []byte("value")) {
		t.Fatalf("round trip lost data: %q", v)
	}
}

func TestDORAMRandomizedAgainstShadow(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	const n = 300
	d, _ := New(n, 16)
	shadow := make([][]byte, n)
	for i := range shadow {
		shadow[i] = make([]byte, 16)
	}
	for step := 0; step < 3000; step++ {
		id := uint32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			val := []byte(fmt.Sprintf("s%d", step))
			if _, err := d.Access(true, id, val); err != nil {
				t.Fatal(err)
			}
			b := make([]byte, 16)
			copy(b, val)
			shadow[id] = b
		} else {
			v, err := d.Access(false, id, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(v, shadow[id]) {
				t.Fatalf("step %d id %d: got %q want %q", step, id, v, shadow[id])
			}
		}
	}
}

func TestDORAMWriteReturnsPrevious(t *testing.T) {
	d, _ := New(100, 8)
	d.Access(true, 5, []byte("aa"))
	prev, _ := d.Access(true, 5, []byte("bb"))
	if !bytes.HasPrefix(prev, []byte("aa")) {
		t.Fatalf("previous value wrong: %q", prev)
	}
}

func TestDORAMSmallNoRecursion(t *testing.T) {
	d, err := New(32, 8) // below topLevelMax: no recursion levels
	if err != nil {
		t.Fatal(err)
	}
	if d.Levels() != 0 {
		t.Fatalf("expected no recursion for 32 blocks, got %d levels", d.Levels())
	}
	d.Access(true, 3, []byte("x"))
	v, _ := d.Access(false, 3, nil)
	if v[0] != 'x' {
		t.Fatal("small DORAM broken")
	}
}

func TestDORAMTraffic(t *testing.T) {
	d, _ := New(1000, 16)
	before := d.ServerBytesMoved()
	d.Access(false, 1, nil)
	delta := d.ServerBytesMoved() - before
	if delta == 0 {
		t.Fatal("no traffic recorded")
	}
	// Recursion must cost more than a bare data access.
	dataOnly := uint64(2 * (d.data.Height() + 1) * 4 * 16)
	if delta <= dataOnly {
		t.Fatalf("recursion traffic missing: %d <= %d", delta, dataOnly)
	}
}

func TestSubORAMAdapter(t *testing.T) {
	s := NewSubORAM(16)
	ids := []uint64{100, 200, 300}
	data := make([]byte, 3*16)
	copy(data[16:32], []byte("two"))
	if err := s.Init(ids, data); err != nil {
		t.Fatal(err)
	}
	reqs := store.NewRequests(4, 16)
	reqs.SetRow(0, store.OpRead, 200, 0, 0, 0, nil)
	reqs.SetRow(1, store.OpWrite, 300, 0, 1, 1, []byte("w300"))
	reqs.SetRow(2, store.OpRead, 999, 0, 2, 2, nil)                 // absent
	reqs.SetRow(3, store.OpRead, store.DummyKeyBit|1, 0, 3, 3, nil) // dummy
	out, err := s.BatchAccess(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out.Block(0), []byte("two")) || out.Aux[0] != 1 {
		t.Fatalf("read wrong: %q", out.Block(0))
	}
	if out.Aux[2] != 0 || out.Aux[3] != 0 {
		t.Fatal("absent/dummy marked found")
	}
	// Write persisted.
	reqs2 := store.NewRequests(1, 16)
	reqs2.SetRow(0, store.OpRead, 300, 0, 0, 0, nil)
	out2, _ := s.BatchAccess(reqs2)
	if !bytes.HasPrefix(out2.Block(0), []byte("w300")) {
		t.Fatalf("write lost: %q", out2.Block(0))
	}
}
