package oblix

import "snoopy/internal/obliv"

// stashSim performs the *doubly-oblivious client work* that distinguishes
// Oblix/ZeroTrace from a plain Path ORAM client: inside an enclave, the
// stash and position metadata cannot be touched via lookup structures —
// every stash interaction is a branch-free linear pass over a fixed-size
// stash buffer, and eviction compares every stash slot against every
// bucket slot on the path (Oblix §V, ZeroTrace §4).
//
// internal/pathoram keeps its metadata in plain Go structures (fine for
// Obladi's trusted proxy, which the paper also runs un-obliviously), so
// DORAM layers the oblivious-stash memory traffic on top: for each path
// access it executes exactly the masked-copy passes a doubly-oblivious
// stash of capacity stashCap would, against real buffers. This reproduces
// the baseline's cost structure — the paper measures vanilla Oblix at
// ~1.1K sequential reqs/s — rather than letting Go map lookups flatter it.
type stashSim struct {
	cap   int
	slots []byte // cap × blockSize backing buffer
	block int
	tmp   []byte
}

// stashCap follows the Path ORAM stash bound at λ=128 plus the transient
// path blocks (the sizing ZeroTrace uses).
const stashCap = 90

func newStashSim(blockSize int) *stashSim {
	return &stashSim{
		cap:   stashCap,
		slots: make([]byte, stashCap*blockSize),
		block: blockSize,
		tmp:   make([]byte, blockSize),
	}
}

// access performs the oblivious-stash passes for one path access on a tree
// with the given number of path buckets (height+1) and bucket capacity z:
//
//   - read-path: one full stash scan per path bucket slot (matching each
//     fetched block against the stash obliviously), and
//   - evict: for every path bucket slot, one full stash scan selecting an
//     eligible block with conditional copies.
func (s *stashSim) access(pathBuckets, z int) {
	passes := 2 * pathBuckets * z
	for p := 0; p < passes; p++ {
		// One branch-free pass over the whole stash: compare-and-set every
		// slot against the transit buffer.
		for i := 0; i < s.cap; i++ {
			slot := s.slots[i*s.block : (i+1)*s.block]
			// The pass is data-independent by construction, so the masked
			// copies run with a zero condition: full read+write traffic
			// over both buffers, no state change — exactly the cost of the
			// real compare-and-set whatever its secret outcome.
			obliv.FusedAccess(0, 0, s.tmp, slot)
		}
	}
}
