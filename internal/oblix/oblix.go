// Package oblix reproduces the Oblix baseline (Mishra et al., S&P'18) the
// paper compares against (§8.1): a doubly-oblivious ORAM (DORAM) for
// hardware enclaves built from Path ORAM with the position map stored
// *recursively* in smaller ORAMs, exactly as the paper simulates ("the
// overhead of recursively storing the position map, as in §VI.A of
// Oblix"). Requests are strictly sequential — the property that caps
// Oblix's throughput at one machine and motivates Snoopy.
//
// The package also provides SubORAM, the adapter that mounts a DORAM as a
// Snoopy partition for the paper's Fig. 10 (Snoopy-Oblix) experiment.
package oblix

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"snoopy/internal/pathoram"
	"snoopy/internal/store"
)

// fanout is the number of position-map entries packed per recursion block
// (4-byte leaves in a 16-byte posmap block, a common recursion choice).
const fanout = 4

// posBlockSize is the byte size of a position-map block.
const posBlockSize = fanout * 4

// topLevelMax is the size at which recursion stops and the map is held in
// enclave memory.
const topLevelMax = 64

// DORAM is a doubly-oblivious ORAM with a recursively stored position map.
type DORAM struct {
	mu        sync.Mutex
	blockSize int
	n         int

	data *pathoram.ORAM
	// posLevels[0] stores the data ORAM's leaves (n entries, packed
	// fanout per block); posLevels[k] stores posLevels[k-1]'s leaves.
	posLevels []*pathoram.ORAM
	// top holds the final level's leaves in enclave memory.
	top []uint32
	rng *rand.Rand

	// Doubly-oblivious client cost simulation (see stash_sim.go). Enabled
	// by default; bulk initialization may disable it temporarily.
	simulate bool
	simData  *stashSim
	simPos   *stashSim
}

// New creates a DORAM over n zeroed blocks with dense indices 0..n-1.
func New(n, blockSize int) (*DORAM, error) {
	if n <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("oblix: invalid geometry n=%d block=%d", n, blockSize)
	}
	d := &DORAM{blockSize: blockSize, n: n, rng: rand.New(rand.NewSource(rand.Int63()))}
	d.simulate = true
	d.simData = newStashSim(blockSize)
	d.simPos = newStashSim(posBlockSize)
	var err error
	d.data, err = pathoram.New(n, blockSize)
	if err != nil {
		return nil, err
	}
	entries := n
	for entries > topLevelMax {
		blocks := (entries + fanout - 1) / fanout
		lvl, err := pathoram.New(blocks, posBlockSize)
		if err != nil {
			return nil, err
		}
		d.posLevels = append(d.posLevels, lvl)
		entries = blocks
	}
	d.top = make([]uint32, entries)
	// Leaves for the last recursion level (or the data ORAM if there is no
	// recursion) start random.
	var leaves int
	if len(d.posLevels) > 0 {
		leaves = d.posLevels[len(d.posLevels)-1].NumLeaves()
	} else {
		leaves = d.data.NumLeaves()
	}
	for i := range d.top {
		d.top[i] = uint32(d.rng.Intn(leaves))
	}
	// Lower levels' stored entries default to 0; we must initialize them to
	// valid random leaves so first accesses behave like steady state. A
	// zero leaf is also valid, so correctness holds without a warm-up pass;
	// we keep zeros (matching a freshly initialized deployment).
	return d, nil
}

// Levels returns the number of recursion levels (excluding the in-enclave
// top map) — the count of extra ORAM accesses each request pays.
func (d *DORAM) Levels() int { return len(d.posLevels) }

// SetSimulateObliviousClient toggles the doubly-oblivious stash cost
// simulation. It defaults to on; bulk loaders may disable it while
// populating initial state (a one-time, unmeasured phase).
func (d *DORAM) SetSimulateObliviousClient(on bool) {
	d.mu.Lock()
	d.simulate = on
	d.mu.Unlock()
}

// NumBlocks returns n.
func (d *DORAM) NumBlocks() int { return d.n }

// Access performs one sequential, doubly-oblivious access.
func (d *DORAM) Access(write bool, id uint32, data []byte) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= d.n {
		return nil, fmt.Errorf("oblix: block %d out of range", id)
	}

	// Walk the recursion from the top: at each level, fetch and remap the
	// posmap block holding the next level's leaf.
	// idxAt[k] is the block index at posLevels[k] that holds the leaf for
	// level k-1 (level -1 being the data ORAM block id).
	L := len(d.posLevels)
	idx := make([]uint32, L+1)
	idx[0] = id // data ORAM index
	for k := 0; k < L; k++ {
		idx[k+1] = idx[k] / fanout
	}

	// Leaf for the top recursion level comes from enclave memory.
	var leaf uint32
	if L == 0 {
		leaf = d.top[id]
		d.top[id] = uint32(d.rng.Intn(d.data.NumLeaves()))
		return d.accessData(write, id, leaf, d.top[id], data)
	}
	topIdx := idx[L]
	leaf = d.top[topIdx]
	newTopLeaf := uint32(d.rng.Intn(d.posLevels[L-1].NumLeaves()))
	d.top[topIdx] = newTopLeaf

	// Descend: at level k (from L-1 down to 0), read posmap block
	// idx[k+1], extract the leaf for idx[k], replace it with a fresh one.
	curOld, curNew := leaf, newTopLeaf
	for k := L - 1; k >= 0; k-- {
		var lowerLeaves int
		if k == 0 {
			lowerLeaves = d.data.NumLeaves()
		} else {
			lowerLeaves = d.posLevels[k-1].NumLeaves()
		}
		slot := int(idx[k] % fanout)
		fresh := uint32(d.rng.Intn(lowerLeaves))
		var extracted uint32
		_, err := d.posLevels[k].AccessWithPos(idx[k+1], curOld, curNew, func(b []byte) {
			extracted = leU32(b[slot*4:])
			putLeU32(b[slot*4:], fresh)
		})
		if err != nil {
			return nil, err
		}
		if d.simulate {
			d.simPos.access(d.posLevels[k].Height()+1, 4)
		}
		curOld, curNew = extracted, fresh
	}
	return d.accessData(write, id, curOld, curNew, data)
}

func (d *DORAM) accessData(write bool, id uint32, oldLeaf, newLeaf uint32, data []byte) ([]byte, error) {
	if d.simulate {
		d.simData.access(d.data.Height()+1, 4)
	}
	var prev []byte
	out, err := d.data.AccessWithPos(id, oldLeaf, newLeaf, func(b []byte) {
		prev = append([]byte(nil), b...)
		if write {
			copy(b, data)
			for i := len(data); i < len(b); i++ {
				b[i] = 0
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if write {
		return prev, nil
	}
	return out, nil
}

// ServerBytesMoved sums traffic across the data ORAM and recursion levels.
func (d *DORAM) ServerBytesMoved() uint64 {
	t := d.data.ServerBytesMoved()
	for _, l := range d.posLevels {
		t += l.ServerBytesMoved()
	}
	return t
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// ---- Snoopy subORAM adapter (paper Fig. 10) ----

// SubORAM mounts a DORAM as a Snoopy partition: batches execute as
// sequential DORAM accesses (dummy requests perform accesses to random
// blocks, keeping the pattern request-independent). It implements
// core.SubORAMClient.
type SubORAM struct {
	mu        sync.Mutex
	blockSize int
	d         *DORAM
	idx       map[uint64]uint32
	rng       *rand.Rand
}

// NewSubORAM creates an empty adapter.
func NewSubORAM(blockSize int) *SubORAM {
	return &SubORAM{blockSize: blockSize, rng: rand.New(rand.NewSource(rand.Int63()))}
}

// Init loads the partition.
func (s *SubORAM) Init(ids []uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(data) != len(ids)*s.blockSize {
		return fmt.Errorf("oblix: data length mismatch")
	}
	n := len(ids)
	if n == 0 {
		n = 1
	}
	d, err := New(n, s.blockSize)
	if err != nil {
		return err
	}
	s.d = d
	// Bulk load without the per-access oblivious-client cost: population is
	// a one-time phase outside the measured request path.
	d.SetSimulateObliviousClient(false)
	s.idx = make(map[uint64]uint32, len(ids))
	for i, id := range ids {
		s.idx[id] = uint32(i)
		if _, err := d.Access(true, uint32(i), data[i*s.blockSize:(i+1)*s.blockSize]); err != nil {
			return err
		}
	}
	d.SetSimulateObliviousClient(true)
	return nil
}

// BatchAccess executes the batch sequentially (Oblix has no batching).
func (s *SubORAM) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d == nil {
		return nil, fmt.Errorf("oblix: not initialized")
	}
	out := reqs.Clone()
	for i := 0; i < out.Len(); i++ {
		key := out.Key[i]
		dense, ok := s.idx[key]
		if !ok {
			// Dummy or absent key: random dummy access, zero response.
			if _, err := s.d.Access(false, uint32(s.rng.Intn(s.d.NumBlocks())), nil); err != nil {
				return nil, err
			}
			zero := out.Block(i)
			for k := range zero {
				zero[k] = 0
			}
			out.Aux[i] = 0
			continue
		}
		var v []byte
		var err error
		if out.Op[i] == store.OpWrite {
			v, err = s.d.Access(true, dense, out.Block(i))
		} else {
			v, err = s.d.Access(false, dense, nil)
		}
		if err != nil {
			return nil, err
		}
		copy(out.Block(i), v)
		out.Aux[i] = 1
	}
	return out, nil
}

// Export returns a copy of the partition contents; used for engine
// switching (internal/adaptive). The bulk read disables the
// oblivious-client cost simulation, as migration is an offline phase.
func (s *SubORAM) Export() (ids []uint64, data []byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d == nil {
		return nil, nil, fmt.Errorf("oblix: not initialized")
	}
	type pair struct {
		id    uint64
		dense uint32
	}
	pairs := make([]pair, 0, len(s.idx))
	for id, dense := range s.idx {
		pairs = append(pairs, pair{id, dense})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].dense < pairs[j].dense })
	s.d.SetSimulateObliviousClient(false)
	defer s.d.SetSimulateObliviousClient(true)
	ids = make([]uint64, len(pairs))
	data = make([]byte, len(pairs)*s.blockSize)
	for i, p := range pairs {
		ids[i] = p.id
		v, err := s.d.Access(false, p.dense, nil)
		if err != nil {
			return nil, nil, err
		}
		copy(data[i*s.blockSize:(i+1)*s.blockSize], v)
	}
	return ids, data, nil
}
