package plaintext

import (
	"bytes"
	"sync"
	"testing"
)

func TestGetSetDelete(t *testing.T) {
	s := New(4)
	if _, ok := s.Get(1); ok {
		t.Fatal("empty store found a key")
	}
	if prev, ok := s.Set(1, []byte("a")); ok || prev != nil {
		t.Fatal("first set reported a previous value")
	}
	if prev, ok := s.Set(1, []byte("b")); !ok || !bytes.Equal(prev, []byte("a")) {
		t.Fatal("second set lost previous value")
	}
	v, ok := s.Get(1)
	if !ok || !bytes.Equal(v, []byte("b")) {
		t.Fatal("get wrong")
	}
	s.Delete(1)
	if _, ok := s.Get(1); ok {
		t.Fatal("delete did not remove")
	}
}

func TestLoad(t *testing.T) {
	s := New(2)
	ids := []uint64{10, 20}
	data := []byte("aaaabbbb")
	s.Load(ids, data, 4)
	v, ok := s.Get(20)
	if !ok || !bytes.Equal(v, []byte("bbbb")) {
		t.Fatal("load wrong")
	}
}

func TestConcurrentShardedAccess(t *testing.T) {
	s := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := uint64(w*1000 + i)
				s.Set(key, []byte{byte(i)})
				v, ok := s.Get(key)
				if !ok || v[0] != byte(i) {
					t.Errorf("key %d wrong", key)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestShardSpread(t *testing.T) {
	s := New(16)
	counts := make(map[*shard]int)
	for key := uint64(0); key < 16000; key++ {
		counts[s.shardFor(key)]++
	}
	if len(counts) != 16 {
		t.Fatalf("only %d shards used", len(counts))
	}
	for _, c := range counts {
		if c < 500 || c > 2000 {
			t.Fatalf("shard badly unbalanced: %d", c)
		}
	}
}
