// Package plaintext is the insecure baseline of the paper's evaluation
// (§8.1, Redis): a sharded in-memory key-value store with no obliviousness
// whatsoever. It measures the cost of security — the paper reports Redis
// at 39.1× Snoopy's throughput on 15 machines, and the reproduction's
// benchmarks measure the same ratio on local hardware.
package plaintext

import (
	"hash/maphash"
	"sync"
)

// Store is a sharded plaintext key-value store. Each shard stands in for a
// Redis cluster node: operations on different shards proceed in parallel.
type Store struct {
	seed   maphash.Seed
	shards []*shard
}

type shard struct {
	mu sync.RWMutex
	m  map[uint64][]byte
}

// New creates a store with the given shard ("node") count.
func New(nShards int) *Store {
	if nShards <= 0 {
		nShards = 1
	}
	s := &Store{seed: maphash.MakeSeed(), shards: make([]*shard, nShards)}
	for i := range s.shards {
		s.shards[i] = &shard{m: make(map[uint64][]byte)}
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardOf returns the shard ("node") index serving key. This is exactly
// what a network adversary watching the baseline sees per request — the
// routing decision that makes per-shard load a function of the secret key
// distribution. The workload-independence soak uses it to show the
// baseline diverging where the oblivious deployment does not.
func (s *Store) ShardOf(key uint64) int {
	var h maphash.Hash
	h.SetSeed(s.seed)
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(key >> (8 * i))
	}
	h.Write(buf[:])
	return int(h.Sum64() % uint64(len(s.shards)))
}

func (s *Store) shardFor(key uint64) *shard {
	return s.shards[s.ShardOf(key)]
}

// Get returns the value for key.
func (s *Store) Get(key uint64) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

// Set stores value under key and returns any previous value.
func (s *Store) Set(key uint64, value []byte) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	prev, ok := sh.m[key]
	sh.m[key] = append([]byte(nil), value...)
	sh.mu.Unlock()
	return prev, ok
}

// Delete removes key.
func (s *Store) Delete(key uint64) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// Load bulk-inserts objects (initialization path; not thread-safe with
// concurrent operations).
func (s *Store) Load(ids []uint64, data []byte, blockSize int) {
	for i, id := range ids {
		s.Set(id, data[i*blockSize:(i+1)*blockSize])
	}
}
