// The workload-independence soak: the full scenario machinery (open-loop
// plans, Zipf and hot-key-storm key choice, identical arrival schedules)
// driven end-to-end through the oblivious system, asserting the paper's §8
// claim at the observable surfaces. Workloads that differ only in the
// secret key distribution must produce byte-identical /metrics and
// /trace/epochs exports and identical telemetry access traces, while the
// plaintext baseline's per-shard routing — the adversary's view of a
// Redis-style deployment — visibly diverges on the same plans.
package loadgen_test

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"snoopy/internal/core"
	"snoopy/internal/loadgen"
	"snoopy/internal/plaintext"
	"snoopy/internal/telemetry"
)

// soakCfg is the shared run shape: everything public is fixed; tests vary
// only Scenario.Keys (and key-choice knobs), the secret input.
func soakCfg(keys loadgen.KeyPattern) loadgen.Config {
	return loadgen.Config{
		Scenario: loadgen.Scenario{Name: string(keys), Keys: keys, WriteFrac: 0.5, UpdateFrac: 0.25},
		Sessions: 300,
		Rate:     1200,
		Duration: 250 * time.Millisecond,
		Objects:  96,
		Seed:     31,
		Epoch:    25 * time.Millisecond,
		Virtual:  true,
	}
}

// runSoak drives one key pattern through a fresh deployment with a stubbed
// telemetry clock and returns the observable surfaces: the /metrics body,
// the /trace/epochs body, the raw recording-site trace, and the report.
func runSoak(t *testing.T, keys loadgen.KeyPattern) ([]byte, []byte, *telemetry.TraceSink, loadgen.Report) {
	t.Helper()
	const blockSize = 32
	cfg := soakCfg(keys)

	reg := telemetry.NewRegistry()
	reg.SetClock(func() int64 { return 0 })
	sink := telemetry.NewTraceSink()
	reg.SetTrace(sink)

	sys, err := core.NewLocal(core.Config{
		BlockSize:   blockSize,
		NumSubORAMs: 2,
		Lambda:      32,
		SortWorkers: 1, SubORAMWorkers: 1,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ids := make([]uint64, cfg.Objects)
	data := make([]byte, cfg.Objects*blockSize)
	for i := range ids {
		ids[i] = uint64(i)
		data[i*blockSize] = byte(i + 1)
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	rep, err := loadgen.Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Completed != rep.Submitted {
		t.Fatalf("%s soak incomplete: %+v", keys, rep)
	}

	h := telemetry.Handler(reg)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	trec := httptest.NewRecorder()
	h.ServeHTTP(trec, httptest.NewRequest("GET", "/trace/epochs?n=4096", nil))
	if mrec.Code != 200 || trec.Code != 200 {
		t.Fatalf("telemetry export status %d/%d", mrec.Code, trec.Code)
	}
	return mrec.Body.Bytes(), trec.Body.Bytes(), sink, rep
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestWorkloadIndependenceSoak: uniform vs Zipf vs hot-key storm over
// identical arrival schedules. The oblivious deployment's epoch schedule
// and every exported telemetry byte must be identical across the three.
func TestWorkloadIndependenceSoak(t *testing.T) {
	refMetrics, refSpans, refSink, refRep := runSoak(t, loadgen.KeysUniform)
	if refSink.Count() == 0 {
		t.Fatal("telemetry trace captured nothing — instrumentation broken")
	}
	for _, keys := range []loadgen.KeyPattern{loadgen.KeysZipf, loadgen.KeysHot} {
		m, s, sink, rep := runSoak(t, keys)
		if !reflect.DeepEqual(rep.EpochRequests, refRep.EpochRequests) {
			t.Fatalf("%s: epoch schedule diverged from uniform", keys)
		}
		if !bytes.Equal(m, refMetrics) {
			i := firstDiff(m, refMetrics)
			t.Fatalf("%s: /metrics bytes diverge at offset %d: %q vs %q",
				keys, i, excerpt(m, i), excerpt(refMetrics, i))
		}
		if !bytes.Equal(s, refSpans) {
			i := firstDiff(s, refSpans)
			t.Fatalf("%s: /trace/epochs bytes diverge at offset %d: %q vs %q",
				keys, i, excerpt(s, i), excerpt(refSpans, i))
		}
		if !telemetry.EqualTraces(sink, refSink) {
			t.Fatalf("%s: telemetry access trace depends on the key distribution (%d vs %d events)",
				keys, sink.Count(), refSink.Count())
		}
	}
}

func excerpt(b []byte, i int) []byte {
	lo, hi := i-20, i+20
	if lo < 0 {
		lo = 0
	}
	if hi > len(b) {
		hi = len(b)
	}
	return b[lo:hi]
}

// TestPlaintextBaselineDiverges replays the same plans against the
// baseline's routing function: under the hot-key storm one shard absorbs
// ~90% of the load, under uniform each of the 8 shards takes ~12.5% — the
// secret is right there in the traffic split. This is the contrast that
// makes the oblivious result above meaningful rather than vacuous.
func TestPlaintextBaselineDiverges(t *testing.T) {
	st := plaintext.New(8)
	maxShare := func(keys loadgen.KeyPattern) float64 {
		ev, _, err := loadgen.Plan(soakCfg(keys))
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, st.NumShards())
		for _, e := range ev {
			counts[st.ShardOf(e.Key)]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(len(ev))
	}
	uniform := maxShare(loadgen.KeysUniform)
	hot := maxShare(loadgen.KeysHot)
	if hot-uniform < 0.25 {
		t.Fatalf("baseline shard load should diverge: uniform max-share %.3f, hot-key max-share %.3f", uniform, hot)
	}
}
