package loadgen_test

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"snoopy/internal/core"
	"snoopy/internal/loadgen"
	"snoopy/internal/metrics"
)

func baseCfg() loadgen.Config {
	return loadgen.Config{
		Scenario: loadgen.Scenario{Name: "test", WriteFrac: 0.5},
		Sessions: 1000,
		Rate:     2000,
		Duration: 500 * time.Millisecond,
		Objects:  256,
		Seed:     42,
		Epoch:    25 * time.Millisecond,
	}
}

func TestPlanDeterminism(t *testing.T) {
	cfg := baseCfg()
	ev1, info1, err := loadgen.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev2, info2, err := loadgen.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ev1, ev2) || !reflect.DeepEqual(info1, info2) {
		t.Fatal("same seed must produce an identical plan")
	}
	if len(ev1) < 500 || len(ev1) > 1500 {
		t.Fatalf("plan size off: %d events for 2000rps x 0.5s", len(ev1))
	}
	cfg.Seed = 43
	ev3, _, err := loadgen.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ev1, ev3) {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestPlanArrivalIndependentOfKeyPattern is the schedule half of the
// workload-independence property: the key pattern is the secret input, so
// changing it (uniform -> zipf -> hot-key storm) must leave every public
// dimension of the plan — arrival times, session attribution, op types,
// per-epoch counts — bit-identical, with only the keys differing.
func TestPlanArrivalIndependentOfKeyPattern(t *testing.T) {
	patterns := []loadgen.KeyPattern{loadgen.KeysUniform, loadgen.KeysZipf, loadgen.KeysHot}
	var ref []loadgen.Event
	var refInfo loadgen.PlanInfo
	for i, kp := range patterns {
		cfg := baseCfg()
		cfg.Scenario.Keys = kp
		ev, info, err := loadgen.Plan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref, refInfo = ev, info
			continue
		}
		if !reflect.DeepEqual(info.EpochRequests, refInfo.EpochRequests) {
			t.Fatalf("%s: per-epoch request counts diverged from uniform", kp)
		}
		if len(ev) != len(ref) {
			t.Fatalf("%s: event count %d vs %d", kp, len(ev), len(ref))
		}
		keysDiffer := false
		for j := range ev {
			a, b := ev[j], ref[j]
			if a.At != b.At || a.Session != b.Session || a.Write != b.Write ||
				a.Update != b.Update || a.Slow != b.Slow {
				t.Fatalf("%s: public event fields diverged at %d: %+v vs %+v", kp, j, a, b)
			}
			if a.Key != b.Key {
				keysDiffer = true
			}
		}
		if !keysDiffer {
			t.Fatalf("%s: key sequence identical to uniform — pattern not applied", kp)
		}
	}
}

func TestPlanChurnAndSlowSessions(t *testing.T) {
	cfg := baseCfg()
	cfg.Scenario.ChurnFrac = 0.2
	cfg.Scenario.SlowFrac = 0.1
	ev, info, err := loadgen.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.DistinctSessions <= cfg.Sessions {
		t.Fatalf("churn produced no replacement sessions: %d", info.DistinctSessions)
	}
	slow := 0
	for _, e := range ev {
		if e.Slow {
			slow++
		}
	}
	if frac := float64(slow) / float64(len(ev)); frac < 0.02 || frac > 0.3 {
		t.Fatalf("slow-session fraction off: %.3f of %d events", frac, len(ev))
	}
}

func TestPlanUpdatesCountTwice(t *testing.T) {
	cfg := baseCfg()
	cfg.Scenario.WriteFrac = 0
	cfg.Scenario.UpdateFrac = 1 // every op is a read+write pair
	ev, info, err := loadgen.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ops != 2*len(ev) {
		t.Fatalf("all-update plan: Ops = %d, want %d", info.Ops, 2*len(ev))
	}
	sum := 0
	for _, n := range info.EpochRequests {
		sum += n
	}
	if sum != info.Ops {
		t.Fatalf("epoch counts sum %d != ops %d", sum, info.Ops)
	}
}

func newCoreStore(t *testing.T, objects, blockSize int) *core.System {
	t.Helper()
	sys, err := core.NewLocal(core.Config{BlockSize: blockSize, NumSubORAMs: 2, Lambda: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	ids := make([]uint64, objects)
	data := make([]byte, objects*blockSize)
	for i := range ids {
		ids[i] = uint64(i)
		data[i*blockSize] = byte(i + 1)
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRunVirtualAgainstCore drives the real oblivious system in virtual
// time: every planned operation must complete, and the reported public
// schedule must match the plan's.
func TestRunVirtualAgainstCore(t *testing.T) {
	cfg := baseCfg()
	cfg.Virtual = true
	cfg.Rate = 1000
	cfg.Objects = 64
	sys := newCoreStore(t, cfg.Objects, 32)

	_, info, err := loadgen.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d operations failed", rep.Failed)
	}
	if rep.Submitted != info.Ops || rep.Completed != info.Ops {
		t.Fatalf("submitted/completed %d/%d, plan has %d ops", rep.Submitted, rep.Completed, info.Ops)
	}
	if !reflect.DeepEqual(rep.EpochRequests, info.EpochRequests) {
		t.Fatal("reported epoch schedule differs from the plan")
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P999 < rep.Latency.P99 {
		t.Fatalf("implausible latency summary: %+v", rep.Latency)
	}
}

// TestScenarioSuiteSoak runs every scenario of the standard matrix against
// the real system in virtual time — the race-detector soak for the whole
// harness surface (churn, slow clients, bursts, updates, all key patterns).
func TestScenarioSuiteSoak(t *testing.T) {
	for _, sc := range loadgen.Suite(20 * time.Millisecond) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cfg := loadgen.Config{
				Scenario: sc,
				Sessions: 500,
				Rate:     1500,
				Duration: 300 * time.Millisecond,
				Objects:  64,
				Seed:     7,
				Epoch:    20 * time.Millisecond,
				Virtual:  true,
			}
			sys := newCoreStore(t, cfg.Objects, 32)
			rep, err := loadgen.Run(sys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed != 0 || rep.Completed == 0 || rep.Completed != rep.Submitted {
				t.Fatalf("scenario %s: %+v", sc.Name, rep)
			}
		})
	}
}

// ---- Coordinated omission ----

// stallStore completes instantly, but its submit path blocks for the whole
// stall window — the shape of a server that stops reading its sockets for
// ten epochs. A closed-loop harness measuring from the actual send time
// sees near-zero latency (it simply stops sending); the open-loop report,
// anchored at intended send times, must charge the full stall.
type stallStore struct{ from, until time.Time }

func (s *stallStore) block() {
	now := time.Now()
	if now.After(s.from) && now.Before(s.until) {
		time.Sleep(time.Until(s.until))
	}
}

func (s *stallStore) ReadAsync(uint64) (func() ([]byte, bool, error), error) {
	s.block()
	return func() ([]byte, bool, error) { return nil, true, nil }, nil
}

func (s *stallStore) WriteAsync(uint64, []byte) (func() ([]byte, bool, error), error) {
	s.block()
	return func() ([]byte, bool, error) { return nil, true, nil }, nil
}

func (s *stallStore) Flush() {}

// naiveWrap measures what a coordinated-omission-blind harness would: time
// from the actual (post-block) send to completion.
type naiveWrap struct {
	inner loadgen.Store
	lat   *metrics.Latencies
}

func (n *naiveWrap) wrap(w func() ([]byte, bool, error), err error) (func() ([]byte, bool, error), error) {
	if err != nil {
		return w, err
	}
	sent := time.Now()
	var once sync.Once
	return func() ([]byte, bool, error) {
		v, ok, e := w()
		once.Do(func() { n.lat.Add(time.Since(sent)) })
		return v, ok, e
	}, nil
}

func (n *naiveWrap) ReadAsync(k uint64) (func() ([]byte, bool, error), error) {
	return n.wrap(n.inner.ReadAsync(k))
}

func (n *naiveWrap) WriteAsync(k uint64, v []byte) (func() ([]byte, bool, error), error) {
	return n.wrap(n.inner.WriteAsync(k, v))
}

func (n *naiveWrap) Flush() { n.inner.Flush() }

// TestCoordinatedOmissionStall is the regression test for the harness's
// central measurement property: a 10-epoch server stall must appear in the
// reported p99 even though the stall also blocks the generator itself.
func TestCoordinatedOmissionStall(t *testing.T) {
	const (
		epoch       = 20 * time.Millisecond
		stallEpochs = 10
		stallLen    = stallEpochs * epoch // 200ms
	)
	cfg := loadgen.Config{
		Scenario: loadgen.Scenario{Name: "stall", WriteFrac: 0.2},
		Sessions: 100,
		Rate:     2000,
		Duration: 700 * time.Millisecond,
		Objects:  64,
		Seed:     9,
		Epoch:    epoch,
	}
	start := time.Now()
	st := &stallStore{from: start.Add(150 * time.Millisecond), until: start.Add(150*time.Millisecond + stallLen)}
	naive := &naiveWrap{inner: st, lat: &metrics.Latencies{}}
	rep, err := loadgen.Run(naive, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimedOut {
		t.Fatal("run timed out")
	}
	if rep.Completed == 0 || rep.Completed+rep.Failed != rep.Submitted {
		t.Fatalf("accounting off: %+v", rep)
	}
	// ~29% of intended sends fall inside the stall window; p99 must sit
	// deep in the stall-affected tail, near the full stall length.
	if rep.Latency.P99 < 100 {
		t.Fatalf("open-loop p99 = %.1fms hides a %v stall", rep.Latency.P99, stallLen)
	}
	if rep.Latency.Max < 150 {
		t.Fatalf("open-loop max = %.1fms, stall is %v", rep.Latency.Max, stallLen)
	}
	// The blind measurement must have hidden it — that is exactly the
	// coordinated-omission failure this harness exists to avoid.
	blind := naive.lat.Snapshot()
	if blind.P99 > 50*time.Millisecond {
		t.Fatalf("blind p99 = %v: stall leaked into send-anchored samples, stub broken", blind.P99)
	}
	if float64(rep.Latency.P99) <= 2*float64(blind.P99)/float64(time.Millisecond) {
		t.Fatalf("open-loop p99 %.1fms not clearly above blind p99 %v", rep.Latency.P99, blind.P99)
	}
}

// ---- Knee search ----

// queueStore is a single-server queue with a fixed service rate:
// completions are spaced 1/capacity apart, so offered load below capacity
// sees small latency and offered load above it sees unbounded queueing.
type queueStore struct {
	mu   sync.Mutex
	next time.Time
	per  time.Duration
}

func (q *queueStore) waiter() (func() ([]byte, bool, error), error) {
	q.mu.Lock()
	now := time.Now()
	if q.next.Before(now) {
		q.next = now
	}
	q.next = q.next.Add(q.per)
	done := q.next
	q.mu.Unlock()
	return func() ([]byte, bool, error) {
		time.Sleep(time.Until(done))
		return nil, true, nil
	}, nil
}

func (q *queueStore) ReadAsync(uint64) (func() ([]byte, bool, error), error) { return q.waiter() }
func (q *queueStore) WriteAsync(uint64, []byte) (func() ([]byte, bool, error), error) {
	return q.waiter()
}
func (q *queueStore) Flush() {}

// TestFindKneeLocatesCapacity sweeps a queue with a known 5000 rps service
// rate: the knee must land below capacity and the sweep must stop at the
// first overloaded probe.
func TestFindKneeLocatesCapacity(t *testing.T) {
	const capacity = 5000.0
	open := func() (loadgen.Store, func(), error) {
		return &queueStore{per: time.Duration(float64(time.Second) / capacity)}, func() {}, nil
	}
	base := loadgen.Config{
		Scenario: loadgen.Scenario{Name: "knee", WriteFrac: 0.5},
		Sessions: 200,
		Duration: 500 * time.Millisecond,
		Objects:  64,
		Seed:     3,
		Epoch:    25 * time.Millisecond,
	}
	rates := []float64{1000, 2000, 4000, 8000, 16000}
	knee, err := loadgen.FindKnee(open, base, rates, 50*time.Millisecond, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if knee.Rate < 2000 || knee.Rate >= 8000 {
		t.Fatalf("knee = %.0f rps for a %.0f rps server: %+v", knee.Rate, capacity, knee.Probes)
	}
	last := knee.Probes[len(knee.Probes)-1]
	if last.Sustained {
		t.Fatalf("sweep ended on a sustained probe without exhausting rates: %+v", knee.Probes)
	}
	for _, p := range knee.Probes[:len(knee.Probes)-1] {
		if !p.Sustained {
			t.Fatalf("non-final probe unsustained: %+v", knee.Probes)
		}
	}
}
