// Package loadgen is an open-loop traffic generator for Snoopy
// deployments: it simulates 10⁵–10⁶ client sessions issuing requests on a
// precomputed arrival schedule (Poisson, bursty, or diurnal; uniform,
// Zipfian, or hot-key-storm key choice; read/write/update mixes; session
// churn and slow-reply clients), driving either the in-process store or a
// store opened over a real TCP cluster through the same three-method
// surface.
//
// Open-loop means the generator never waits for a response before sending
// the next request: the schedule is fixed before the run starts, and every
// latency sample is measured from the request's *intended* send time, not
// from whenever the harness actually managed to send it. This is the
// coordinated-omission-safe discipline (Tene's critique of closed-loop
// benchmarks): if the system stalls for ten epochs, the requests that
// should have been sent during the stall still charge the stall to the
// system instead of silently rescheduling themselves after it.
//
// The whole schedule is a deterministic function of Config.Seed. Two
// configs that differ only in key pattern (the secret input) produce
// byte-identical arrival schedules — the property the workload-independence
// soak in this package's tests leans on: an oblivious deployment must
// produce indistinguishable epoch schedules and telemetry across them,
// while the plaintext baseline's per-shard load visibly diverges.
package loadgen

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"snoopy/internal/metrics"
	"snoopy/internal/workload"
)

// Store is the driven surface: the async submit half of a Snoopy
// deployment. Both *snoopy.Store (in-process or over dialed TCP subORAMs)
// and *core.System satisfy it. Flush is used only in virtual-time mode;
// real-time runs rely on the store's own epoch ticker.
type Store interface {
	ReadAsync(key uint64) (func() ([]byte, bool, error), error)
	WriteAsync(key uint64, value []byte) (func() ([]byte, bool, error), error)
	Flush()
}

// ArrivalShape selects the arrival schedule family.
type ArrivalShape string

const (
	// ArrivalPoisson is a constant-rate Poisson process.
	ArrivalPoisson ArrivalShape = "poisson"
	// ArrivalBursty alternates quiet and BurstFactor× phases every
	// BurstPeriod while keeping the configured mean rate.
	ArrivalBursty ArrivalShape = "bursty"
	// ArrivalDiurnal modulates the rate sinusoidally over the run (a
	// compressed day) with peak/trough ratio BurstFactor.
	ArrivalDiurnal ArrivalShape = "diurnal"
)

// KeyPattern selects how sessions choose keys — the secret input.
type KeyPattern string

const (
	// KeysUniform draws keys uniformly over the object set.
	KeysUniform KeyPattern = "uniform"
	// KeysZipf draws keys Zipf(ZipfS)-skewed (paper §4.1's dedup-defused
	// workload).
	KeysZipf KeyPattern = "zipf"
	// KeysHot sends fraction HotFrac of requests to one hot key — the
	// hot-key-storm scenario.
	KeysHot KeyPattern = "hotkey"
)

// Scenario describes one traffic pattern of the suite. The zero value of
// each knob picks a sensible default (see fill).
type Scenario struct {
	Name    string       `json:"name"`
	Arrival ArrivalShape `json:"arrival"`
	Keys    KeyPattern   `json:"keys"`
	// ZipfS is the Zipf skew for KeysZipf (default 1.1).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// HotFrac is the hot-key fraction for KeysHot (default 0.9).
	HotFrac float64 `json:"hot_frac,omitempty"`
	// WriteFrac is the blind-write fraction of operations.
	WriteFrac float64 `json:"write_frac"`
	// UpdateFrac is the fraction of non-write operations that are
	// read-modify-write pairs: a read and a dependent write of the same
	// key submitted into the same epoch (two store operations).
	UpdateFrac float64 `json:"update_frac,omitempty"`
	// BurstFactor is the peak/quiet (bursty) or peak/trough (diurnal)
	// rate ratio (default 8 bursty, 4 diurnal).
	BurstFactor float64 `json:"burst_factor,omitempty"`
	// BurstPeriod is the bursty cycle length in seconds (default 1).
	BurstPeriod float64 `json:"burst_period,omitempty"`
	// ChurnFrac is the fraction of the session population replaced per
	// second: sessions disconnect and new ones join at this rate.
	ChurnFrac float64 `json:"churn_frac,omitempty"`
	// SlowFrac is the fraction of sessions that are slow clients: they
	// collect their replies only SlowDelay after submitting. Their
	// completions are counted separately and must not perturb the epoch
	// schedule or the fast sessions' latency.
	SlowFrac float64 `json:"slow_frac,omitempty"`
	// SlowDelay is how late a slow session collects replies (default
	// 50ms).
	SlowDelay time.Duration `json:"slow_delay_ns,omitempty"`
}

func (s *Scenario) fill() {
	if s.Arrival == "" {
		s.Arrival = ArrivalPoisson
	}
	if s.Keys == "" {
		s.Keys = KeysUniform
	}
	if s.ZipfS <= 1 {
		// rand.NewZipf requires s > 1; the canonical skew is 1.1.
		s.ZipfS = 1.1
	}
	if s.HotFrac == 0 {
		s.HotFrac = 0.9
	}
	if s.BurstFactor == 0 {
		if s.Arrival == ArrivalDiurnal {
			s.BurstFactor = 4
		} else {
			s.BurstFactor = 8
		}
	}
	if s.BurstPeriod == 0 {
		s.BurstPeriod = 1
	}
	if s.SlowDelay == 0 {
		s.SlowDelay = 50 * time.Millisecond
	}
}

// Config is one load-generation run.
type Config struct {
	Scenario Scenario
	// Sessions is the simulated client-session population (each arrival
	// is attributed to one active session).
	Sessions int
	// Rate is the mean offered load in requests/second.
	Rate float64
	// Duration is the modeled schedule length.
	Duration time.Duration
	// Objects is the key space [0, Objects).
	Objects int
	// Seed makes the whole schedule deterministic.
	Seed int64
	// Epoch is the epoch quantum: virtual-time runs flush once per
	// quantum, and per-epoch request counts are reported against it.
	Epoch time.Duration
	// Virtual runs in virtual time: arrivals are grouped by epoch index,
	// each group is submitted back-to-back and flushed explicitly, and
	// completions are awaited before the next epoch. Deterministic
	// (modulo wall-clock latency values) — the mode the leakage soak and
	// the chaos-style tests use. Real-time mode (false) paces arrivals on
	// the wall clock against a store running its own epoch ticker.
	Virtual bool
	// MaxInFlight bounds outstanding completion waiters (default 65536).
	// When the bound is hit the dispatcher blocks — the send happens
	// late, but the intended send time still anchors the latency sample,
	// so the backpressure cannot hide server stalls.
	MaxInFlight int
	// DrainTimeout bounds waiting for stragglers after the last arrival
	// (default 2×Duration + 20×Epoch + 2s). On expiry the run reports
	// TimedOut with the completions it has.
	DrainTimeout time.Duration
}

func (c *Config) fill() error {
	c.Scenario.fill()
	if c.Sessions <= 0 {
		c.Sessions = 1
	}
	if c.Objects <= 0 {
		return fmt.Errorf("loadgen: Objects must be positive")
	}
	if c.Rate <= 0 || c.Duration <= 0 {
		return fmt.Errorf("loadgen: Rate and Duration must be positive")
	}
	if c.Epoch <= 0 {
		return fmt.Errorf("loadgen: Epoch quantum must be positive")
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1 << 16
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2*c.Duration + 20*c.Epoch + 2*time.Second
	}
	return nil
}

// Event is one scheduled request of a plan.
type Event struct {
	// At is the intended send offset from the run start.
	At time.Duration
	// Session is the issuing session's id (ids ≥ Config.Sessions are
	// churned-in replacements).
	Session int32
	// Write marks a blind write; Update marks a read-modify-write pair
	// (the read at At, plus a dependent write submitted with it).
	Write  bool
	Update bool
	// Slow marks a slow-client session's request.
	Slow bool
	// Key is the chosen object key.
	Key uint64
}

// PlanInfo summarizes a plan's public shape.
type PlanInfo struct {
	// DistinctSessions counts every session id that existed during the
	// run, including churned-in replacements.
	DistinctSessions int
	// EpochRequests is the number of store operations falling into each
	// epoch quantum — the public arrival schedule the oblivious system's
	// epoch schedule must be a function of.
	EpochRequests []int
	// Ops is the total store-operation count (updates count twice).
	Ops int
}

// Plan deterministically expands cfg into its request schedule. Arrival
// times, session attribution, op mix, churn, and slow-client assignment
// draw from one rng seeded with Seed; key choice draws from an independent
// rng derived from Seed — so two configs differing only in KeyPattern (the
// secret) produce identical arrival schedules with different keys.
func Plan(cfg Config) ([]Event, PlanInfo, error) {
	if err := cfg.fill(); err != nil {
		return nil, PlanInfo{}, err
	}
	sc := cfg.Scenario
	arrRng := rand.New(rand.NewSource(cfg.Seed))
	keyRng := rand.New(rand.NewSource(int64(uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15)))

	secs := cfg.Duration.Seconds()
	var sched []workload.Burst
	switch sc.Arrival {
	case ArrivalBursty:
		sched = workload.BurstySchedule(cfg.Rate, sc.BurstFactor, sc.BurstPeriod, 0.2, secs)
	case ArrivalDiurnal:
		sched = workload.DiurnalSchedule(cfg.Rate, sc.BurstFactor, secs, 8)
	default:
		sched = workload.Steady(cfg.Rate, secs)
	}
	times := workload.Arrivals(arrRng, sched)

	var chooser workload.KeyChooser
	switch sc.Keys {
	case KeysZipf:
		chooser = workload.Zipf(cfg.Objects, sc.ZipfS)
	case KeysHot:
		chooser = workload.Hotspot(cfg.Objects, sc.HotFrac)
	default:
		chooser = workload.Uniform(cfg.Objects)
	}

	// Churn instants: Poisson at ChurnFrac × Sessions replacements/second,
	// drawn from the arrival rng after the arrival schedule (one extra
	// draw sequence, same for every key pattern).
	var churn []float64
	if sc.ChurnFrac > 0 {
		churn = workload.Arrivals(arrRng, workload.Steady(sc.ChurnFrac*float64(cfg.Sessions), secs))
	}

	active := make([]int32, cfg.Sessions)
	for i := range active {
		active[i] = int32(i)
	}
	nextID := int32(cfg.Sessions)
	slow := func(id int32) bool {
		if sc.SlowFrac <= 0 {
			return false
		}
		// Deterministic per-session assignment, independent of both rngs.
		x := uint64(id)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		x ^= x >> 29
		return float64(x%1_000_000)/1_000_000 < sc.SlowFrac
	}

	epochSec := cfg.Epoch.Seconds()
	epochs := int(secs/epochSec + 0.5)
	if epochs < 1 {
		epochs = 1
	}
	info := PlanInfo{EpochRequests: make([]int, epochs)}
	events := make([]Event, 0, len(times))
	ci := 0
	for _, at := range times {
		for ci < len(churn) && churn[ci] <= at {
			active[arrRng.Intn(len(active))] = nextID
			nextID++
			ci++
		}
		sid := active[arrRng.Intn(len(active))]
		write := arrRng.Float64() < sc.WriteFrac
		update := false
		if !write && sc.UpdateFrac > 0 {
			update = arrRng.Float64() < sc.UpdateFrac
		}
		ev := Event{
			At:      time.Duration(at * float64(time.Second)),
			Session: sid,
			Write:   write,
			Update:  update,
			Slow:    slow(sid),
			Key:     chooser(keyRng),
		}
		events = append(events, ev)
		e := int(at / epochSec)
		if e >= epochs {
			e = epochs - 1
		}
		n := 1
		if update {
			n = 2
		}
		info.EpochRequests[e] += n
		info.Ops += n
	}
	info.DistinctSessions = int(nextID)
	return events, info, nil
}

// LatencyMillis is a latency distribution summary in milliseconds.
type LatencyMillis struct {
	Mean float64 `json:"mean_ms"`
	P50  float64 `json:"p50_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
}

func toMillis(s metrics.LatencySnapshot) LatencyMillis {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencyMillis{Mean: ms(s.Mean), P50: ms(s.P50), P99: ms(s.P99), P999: ms(s.P999), Max: ms(s.Max)}
}

// Report is the outcome of one run.
type Report struct {
	Scenario         string  `json:"scenario"`
	Sessions         int     `json:"sessions"`
	DistinctSessions int     `json:"distinct_sessions"`
	OfferedRate      float64 `json:"offered_rps"`
	AchievedRate     float64 `json:"achieved_rps"`
	Submitted        int     `json:"submitted"`
	Completed        int     `json:"completed"`
	Failed           int     `json:"failed"`
	SlowCompleted    int     `json:"slow_completed,omitempty"`
	Epochs           int     `json:"epochs"`
	// EpochRequests is populated in virtual mode (the deterministic
	// public schedule); omitted in real-time mode to keep reports small.
	EpochRequests []int   `json:"epoch_requests,omitempty"`
	WallSeconds   float64 `json:"wall_seconds"`
	TimedOut      bool    `json:"timed_out,omitempty"`
	// Latency is the fast-session distribution, measured from intended
	// send times (coordinated-omission-safe). Slow sessions' samples are
	// excluded — their delay is client-side by construction.
	Latency LatencyMillis `json:"latency"`
}

// value derives a deterministic 8-byte write payload.
func value(key uint64, seq int) []byte {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, key^uint64(seq)<<32)
	return v
}

// Run executes cfg against st and reports the measured distributions.
func Run(st Store, cfg Config) (Report, error) {
	events, info, err := Plan(cfg)
	if err != nil {
		return Report{}, err
	}
	if err := cfg.fill(); err != nil {
		return Report{}, err
	}
	rep := Report{
		Scenario:         cfg.Scenario.Name,
		Sessions:         cfg.Sessions,
		DistinctSessions: info.DistinctSessions,
		OfferedRate:      cfg.Rate,
		Epochs:           len(info.EpochRequests),
	}
	if cfg.Virtual {
		return runVirtual(st, cfg, events, info, rep)
	}
	return runOpenLoop(st, cfg, events, info, rep)
}

// runVirtual groups arrivals by epoch quantum, submits each group
// back-to-back, flushes, and awaits completions — a deterministic schedule
// for leakage and determinism tests.
func runVirtual(st Store, cfg Config, events []Event, info PlanInfo, rep Report) (Report, error) {
	var lat metrics.Latencies
	start := time.Now()
	epochSec := cfg.Epoch.Seconds()
	i := 0
	for e := 0; e < len(info.EpochRequests); e++ {
		edge := float64(e+1) * epochSec
		waits := make([]func() ([]byte, bool, error), 0, info.EpochRequests[e])
		for i < len(events) && (events[i].At.Seconds() < edge || e == len(info.EpochRequests)-1) {
			ev := events[i]
			i++
			submit := func(write bool) {
				var w func() ([]byte, bool, error)
				var err error
				if write {
					w, err = st.WriteAsync(ev.Key, value(ev.Key, i))
				} else {
					w, err = st.ReadAsync(ev.Key)
				}
				if err != nil {
					rep.Failed++
					return
				}
				rep.Submitted++
				waits = append(waits, w)
			}
			submit(ev.Write)
			if ev.Update {
				submit(true)
			}
		}
		st.Flush()
		t0 := time.Now()
		for _, w := range waits {
			if _, _, err := w(); err != nil {
				rep.Failed++
				continue
			}
			rep.Completed++
			lat.Add(time.Since(t0))
		}
	}
	rep.EpochRequests = info.EpochRequests
	rep.WallSeconds = time.Since(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.AchievedRate = float64(rep.Completed) / rep.WallSeconds
	}
	rep.Latency = toMillis(lat.Snapshot())
	return rep, nil
}

// runOpenLoop paces the schedule on the wall clock. Submission is
// non-blocking; one waiter goroutine per in-flight request collects the
// completion and records latency from the intended send time.
func runOpenLoop(st Store, cfg Config, events []Event, info PlanInfo, rep Report) (Report, error) {
	var (
		lat       metrics.Latencies
		mu        sync.Mutex // completed / failed / slowCompleted
		completed int
		failed    int
		slowDone  int
	)
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()

	collect := func(w func() ([]byte, bool, error), intended time.Time, slow bool) {
		defer wg.Done()
		defer func() { <-sem }()
		if slow {
			// A slow client leaves the reply unread; the server-side
			// epoch schedule must not care.
			time.Sleep(cfg.Scenario.SlowDelay)
		}
		_, _, err := w()
		done := time.Now()
		mu.Lock()
		if err != nil {
			failed++
		} else if slow {
			slowDone++
		} else {
			completed++
		}
		mu.Unlock()
		if err == nil && !slow {
			lat.Add(done.Sub(intended))
		}
	}

	submit := func(ev Event, intended time.Time, write bool, seq int) {
		var w func() ([]byte, bool, error)
		var err error
		if write {
			w, err = st.WriteAsync(ev.Key, value(ev.Key, seq))
		} else {
			w, err = st.ReadAsync(ev.Key)
		}
		if err != nil {
			mu.Lock()
			failed++
			mu.Unlock()
			return
		}
		rep.Submitted++
		sem <- struct{}{}
		wg.Add(1)
		go collect(w, intended, ev.Slow)
	}

	for seq, ev := range events {
		intended := start.Add(ev.At)
		// Coarse pacing: sleep only when comfortably ahead; absolute
		// targets keep the error from accumulating.
		if d := time.Until(intended); d > time.Millisecond {
			time.Sleep(d)
		}
		submit(ev, intended, ev.Write, seq)
		if ev.Update {
			submit(ev, intended, true, seq)
		}
	}

	// Drain with a deadline so a wedged deployment yields a report
	// instead of a hang.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.DrainTimeout):
		rep.TimedOut = true
	}

	mu.Lock()
	rep.Completed = completed
	rep.Failed = failed
	rep.SlowCompleted = slowDone
	mu.Unlock()
	rep.WallSeconds = time.Since(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.AchievedRate = float64(rep.Completed+rep.SlowCompleted) / rep.WallSeconds
	}
	rep.Latency = toMillis(lat.Snapshot())
	return rep, nil
}
