package loadgen

import "time"

// Suite returns the standard scenario matrix the traffic harness and the
// soak tests run: the paper's evaluation workloads (Figs. 6–8) plus the
// adversarial shapes (hot-key storm, flash-crowd bursts, churn with slow
// clients) that an oblivious deployment must absorb without its schedule
// leaking. The epoch quantum is only used to scale the slow-client delay.
func Suite(epoch time.Duration) []Scenario {
	slow := 5 * epoch
	if slow < 10*time.Millisecond {
		slow = 10 * time.Millisecond
	}
	return []Scenario{
		{
			Name:      "poisson-uniform",
			Arrival:   ArrivalPoisson,
			Keys:      KeysUniform,
			WriteFrac: 0.5,
		},
		{
			Name:      "poisson-zipf",
			Arrival:   ArrivalPoisson,
			Keys:      KeysZipf,
			ZipfS:     1.1,
			WriteFrac: 0.5,
		},
		{
			Name:      "hotkey-storm",
			Arrival:   ArrivalPoisson,
			Keys:      KeysHot,
			HotFrac:   0.9,
			WriteFrac: 0.1,
		},
		{
			Name:        "bursty-uniform",
			Arrival:     ArrivalBursty,
			Keys:        KeysUniform,
			WriteFrac:   0.5,
			BurstFactor: 8,
			BurstPeriod: 1,
		},
		{
			Name:        "diurnal-mixed",
			Arrival:     ArrivalDiurnal,
			Keys:        KeysZipf,
			ZipfS:       1.3,
			WriteFrac:   0.3,
			UpdateFrac:  0.2,
			BurstFactor: 4,
		},
		{
			Name:      "churn-slow",
			Arrival:   ArrivalPoisson,
			Keys:      KeysUniform,
			WriteFrac: 0.5,
			ChurnFrac: 0.05,
			SlowFrac:  0.02,
			SlowDelay: slow,
		},
	}
}

// Named returns the suite scenario with the given name, or false.
func Named(name string, epoch time.Duration) (Scenario, bool) {
	for _, s := range Suite(epoch) {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
