package loadgen_test

import (
	"testing"
	"time"

	"snoopy/internal/core"
	"snoopy/internal/loadgen"
	"snoopy/internal/planner"
	"snoopy/internal/simnet"
)

// TestKneeCrossValidatesSimnet ties the two capacity estimators to each
// other at one (L, S, λ, arrival) point: the discrete-event simulator's
// predicted knee (which itself agrees with the paper's Eq. 1–2 closed form
// — see simnet's TestSimulatorAgreesWithClosedForm) and the open-loop
// harness's measured knee over the real in-process deployment, both built
// from the same calibrated cost model.
//
// Tolerance band: one order of magnitude each way (measured knee within
// [predicted/8, predicted×8]). The simulator prices only the modeled
// stages with no client-side costs, while the harness measures end-to-end
// through goroutine scheduling, the epoch ticker's phase, and allocator
// noise on a shared CI machine — agreement here is about catching
// order-of-magnitude planner/simulator drift, not percentage error. The
// BENCH_traffic.json harness records the exact measured-vs-predicted ratio
// for trend tracking.
func TestKneeCrossValidatesSimnet(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweeps real-time probes; skipped in -short")
	}
	const (
		lbs     = 1
		subs    = 2
		objects = 1 << 12
		block   = 64
		lambda  = 64
		epoch   = 50 * time.Millisecond
	)
	model := planner.Calibrate(block, lambda)
	predicted, err := simnet.MaxStableThroughput(simnet.Config{
		LBs: lbs, Subs: subs, Objects: objects, Block: block, Lambda: lambda,
		Epoch: epoch, Model: model, Epochs: 40, Seed: 1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if predicted <= 0 {
		t.Fatal("simnet predicts zero capacity")
	}

	open := func() (loadgen.Store, func(), error) {
		sys, err := core.NewLocal(core.Config{
			BlockSize:        block,
			NumLoadBalancers: lbs,
			NumSubORAMs:      subs,
			Lambda:           lambda,
			EpochDuration:    epoch,
		})
		if err != nil {
			return nil, nil, err
		}
		const n = 256
		ids := make([]uint64, n)
		data := make([]byte, n*block)
		for i := range ids {
			ids[i] = uint64(i)
		}
		if err := sys.Init(ids, data); err != nil {
			sys.Close()
			return nil, nil, err
		}
		return sys, func() { sys.Close() }, nil
	}

	base := loadgen.Config{
		Scenario: loadgen.Scenario{Name: "xval", WriteFrac: 0.5},
		Sessions: 1000,
		Duration: 1500 * time.Millisecond,
		Objects:  256,
		Seed:     5,
		Epoch:    epoch,
	}
	// Two probes bracket the band: predicted/8 must sustain (the system
	// cannot be 8× slower than its own model says) and predicted×8 must
	// not (nor 8× faster).
	lo, hi := predicted/8, predicted*8
	if lo < 50 {
		lo = 50
	}
	knee, err := loadgen.FindKnee(open, base, []float64{lo, hi},
		3*epoch, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if knee.Rate < lo {
		t.Fatalf("measured knee %.0f rps below predicted/8 = %.0f rps (simnet predicts %.0f): %+v",
			knee.Rate, lo, predicted, knee.Probes)
	}
	if knee.Rate >= hi {
		t.Fatalf("deployment sustained %.0f rps, 8x the simnet prediction %.0f — model drift: %+v",
			knee.Rate, predicted, knee.Probes)
	}
}
