package loadgen

import (
	"fmt"
	"time"
)

// KneeProbe is one sustained-throughput probe of a rate sweep.
type KneeProbe struct {
	Rate      float64 `json:"offered_rps"`
	Achieved  float64 `json:"achieved_rps"`
	P50ms     float64 `json:"p50_ms"`
	P99ms     float64 `json:"p99_ms"`
	P999ms    float64 `json:"p999_ms"`
	Sustained bool    `json:"sustained"`
	TimedOut  bool    `json:"timed_out,omitempty"`
}

// Knee is the outcome of a rate sweep: the largest offered rate the
// deployment sustained, plus every probe for the report.
type Knee struct {
	Probes []KneeProbe `json:"probes"`
	// Rate is the sustained-throughput knee in requests/second — the
	// highest probed rate that met both the goodput and the p99 gates. 0
	// if no probe was sustained.
	Rate float64 `json:"knee_rps"`
}

// FindKnee sweeps the offered rates (ascending) and reports the
// sustained-throughput knee: the largest rate at which the deployment
// achieved at least goodputFrac of the offered load AND kept open-loop p99
// within p99Bound. open builds a fresh store per probe (so queue backlog
// from an overloaded probe cannot poison the next) and returns a cleanup.
// The sweep stops early after the first unsustained probe — past the knee
// every higher rate only deepens the overload.
func FindKnee(open func() (Store, func(), error), base Config, rates []float64, p99Bound time.Duration, goodputFrac float64) (Knee, error) {
	if goodputFrac <= 0 || goodputFrac > 1 {
		goodputFrac = 0.9
	}
	var knee Knee
	for _, r := range rates {
		st, cleanup, err := open()
		if err != nil {
			return knee, fmt.Errorf("loadgen: open store for %.0f rps probe: %w", r, err)
		}
		cfg := base
		cfg.Rate = r
		rep, err := Run(st, cfg)
		cleanup()
		if err != nil {
			return knee, fmt.Errorf("loadgen: probe at %.0f rps: %w", r, err)
		}
		goodput := float64(rep.Completed+rep.SlowCompleted) / cfg.Duration.Seconds()
		p99 := time.Duration(rep.Latency.P99 * float64(time.Millisecond))
		sustained := !rep.TimedOut && goodput >= goodputFrac*r && p99 <= p99Bound
		knee.Probes = append(knee.Probes, KneeProbe{
			Rate:      r,
			Achieved:  goodput,
			P50ms:     rep.Latency.P50,
			P99ms:     rep.Latency.P99,
			P999ms:    rep.Latency.P999,
			Sustained: sustained,
			TimedOut:  rep.TimedOut,
		})
		if sustained {
			knee.Rate = r
		} else {
			break
		}
	}
	return knee, nil
}
