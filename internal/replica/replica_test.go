package replica

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

const testBlock = 16

func newGroup(t *testing.T, f, r int) (*Group, []*Replica) {
	t.Helper()
	n := f + r + 1
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = NewReplica(suboram.New(suboram.Config{BlockSize: testBlock}))
	}
	g, err := NewGroup(reps, nil, f, r)
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint64{1, 2, 3}
	data := make([]byte, 3*testBlock)
	copy(data, []byte("one"))
	copy(data[testBlock:], []byte("two"))
	if err := g.Init(ids, data); err != nil {
		t.Fatal(err)
	}
	return g, reps
}

func readKey(t *testing.T, g *Group, key uint64) ([]byte, bool) {
	t.Helper()
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, key, 0, 0, 0, nil)
	out, err := g.BatchAccess(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return out.Block(0), out.Aux[0] == 1
}

func writeKey(t *testing.T, g *Group, key uint64, val []byte) {
	t.Helper()
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpWrite, key, 0, 0, 0, val)
	if _, err := g.BatchAccess(reqs); err != nil {
		t.Fatal(err)
	}
}

func TestGroupBasicOperation(t *testing.T) {
	g, _ := newGroup(t, 1, 1)
	v, found := readKey(t, g, 2)
	if !found || !bytes.HasPrefix(v, []byte("two")) {
		t.Fatalf("read through group: %q %v", v, found)
	}
	writeKey(t, g, 2, []byte("TWO"))
	v, _ = readKey(t, g, 2)
	if !bytes.HasPrefix(v, []byte("TWO")) {
		t.Fatalf("write through group lost: %q", v)
	}
}

func TestGroupSurvivesCrashes(t *testing.T) {
	g, reps := newGroup(t, 2, 0)
	writeKey(t, g, 1, []byte("before"))
	reps[0].Fail()
	reps[2].Fail()
	v, found := readKey(t, g, 1)
	if !found || !bytes.HasPrefix(v, []byte("before")) {
		t.Fatalf("read with 2 crashed replicas: %q %v", v, found)
	}
}

func TestGroupDetectsRollback(t *testing.T) {
	g, reps := newGroup(t, 0, 1)
	writeKey(t, g, 3, []byte("v1"))
	// Roll one replica back to its initial sealed snapshot. Its reply
	// epoch will lag the trusted counter, so it must be excluded; the
	// fresh replica serves the correct value.
	if err := reps[1].Rollback(); err != nil {
		t.Fatal(err)
	}
	v, found := readKey(t, g, 3)
	if !found || !bytes.HasPrefix(v, []byte("v1")) {
		t.Fatalf("rolled-back replica leaked stale data: %q %v", v, found)
	}
}

func TestGroupAllStaleIsNoQuorum(t *testing.T) {
	g, reps := newGroup(t, 0, 0) // single replica, no tolerance
	writeKey(t, g, 1, []byte("x"))
	if err := reps[0].Rollback(); err != nil {
		t.Fatal(err)
	}
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, 1, 0, 0, 0, nil)
	if _, err := g.BatchAccess(reqs); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("expected ErrNoQuorum, got %v", err)
	}
}

func TestGroupAllCrashedIsNoQuorum(t *testing.T) {
	g, reps := newGroup(t, 1, 0)
	for _, r := range reps {
		r.Fail()
	}
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, 1, 0, 0, 0, nil)
	if _, err := g.BatchAccess(reqs); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("expected ErrNoQuorum, got %v", err)
	}
}

func TestGroupRecoveredStaleReplicaStaysExcluded(t *testing.T) {
	g, reps := newGroup(t, 1, 1)
	writeKey(t, g, 1, []byte("fresh"))
	reps[0].Fail()
	writeKey(t, g, 1, []byte("fresher")) // replica 0 misses this epoch
	reps[0].Recover()
	// Replica 0's epoch now lags; its replies are stale until resynced.
	v, found := readKey(t, g, 1)
	if !found || !bytes.HasPrefix(v, []byte("fresher")) {
		t.Fatalf("stale recovered replica served: %q %v", v, found)
	}
}

// divergentClient wraps a subORAM and corrupts every response.
type divergentClient struct{ inner Client }

func (d divergentClient) Init(ids []uint64, data []byte) error { return d.inner.Init(ids, data) }

func (d divergentClient) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	out, err := d.inner.BatchAccess(reqs)
	if err != nil {
		return nil, err
	}
	if out.Len() > 0 {
		out.Block(0)[0] ^= 0xFF
	}
	return out, nil
}

func TestGroupDetectsDivergence(t *testing.T) {
	reps := []*Replica{
		NewReplica(suboram.New(suboram.Config{BlockSize: testBlock})),
		NewReplica(divergentClient{suboram.New(suboram.Config{BlockSize: testBlock})}),
	}
	g, err := NewGroup(reps, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Init([]uint64{1}, make([]byte, testBlock)); err != nil {
		t.Fatal(err)
	}
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, 1, 0, 0, 0, nil)
	if _, err := g.BatchAccess(reqs); !errors.Is(err, ErrDivergence) {
		t.Fatalf("expected ErrDivergence, got %v", err)
	}
}

func TestGroupSizeValidation(t *testing.T) {
	if _, err := NewGroup([]*Replica{NewReplica(nil)}, nil, 1, 1); err == nil {
		t.Fatal("wrong replica count accepted")
	}
	if _, err := NewGroup(nil, nil, -1, 0); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestTrustedCounterMonotone(t *testing.T) {
	var c TrustedCounter
	if c.Current() != 0 {
		t.Fatal("counter should start at zero")
	}
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		v := c.Increment()
		if v <= prev {
			t.Fatal("counter not monotone")
		}
		prev = v
	}
}

// stalledClient wedges every BatchAccess until released — a replica whose
// host is alive but whose enclave never answers.
type stalledClient struct {
	Client
	release chan struct{}
}

func (s *stalledClient) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	<-s.release
	return s.Client.BatchAccess(reqs)
}

func TestGroupTimeoutSkipsStalledReplica(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	live := NewReplica(suboram.New(suboram.Config{BlockSize: testBlock}))
	stuck := NewReplica(&stalledClient{
		Client:  suboram.New(suboram.Config{BlockSize: testBlock}),
		release: release,
	})
	g, err := NewGroup([]*Replica{live, stuck}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Init goes through the stalled wrapper's embedded client directly, so
	// it completes; only BatchAccess stalls.
	ids := []uint64{1}
	data := make([]byte, testBlock)
	copy(data, []byte("one"))
	if err := g.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	// Generous deadline: the live replica must comfortably beat it even
	// under the race detector, while the stalled one never answers.
	g.SetTimeout(2 * time.Second)
	t0 := time.Now()
	v, found := readKey(t, g, 1)
	if d := time.Since(t0); d > 10*time.Second {
		t.Fatalf("stalled replica held the batch for %v despite the deadline", d)
	}
	if !found || !bytes.HasPrefix(v, []byte("one")) {
		t.Fatalf("read with stalled replica: %q %v", v, found)
	}
}
