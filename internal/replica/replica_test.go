package replica

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

const testBlock = 16

func newGroup(t *testing.T, f, r int) (*Group, []*Replica) {
	t.Helper()
	n := f + r + 1
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = NewReplica(suboram.New(suboram.Config{BlockSize: testBlock}))
	}
	g, err := NewGroup(reps, nil, f, r)
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint64{1, 2, 3}
	data := make([]byte, 3*testBlock)
	copy(data, []byte("one"))
	copy(data[testBlock:], []byte("two"))
	if err := g.Init(ids, data); err != nil {
		t.Fatal(err)
	}
	return g, reps
}

func readKey(t *testing.T, g *Group, key uint64) ([]byte, bool) {
	t.Helper()
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, key, 0, 0, 0, nil)
	out, err := g.BatchAccess(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return out.Block(0), out.Aux[0] == 1
}

func writeKey(t *testing.T, g *Group, key uint64, val []byte) {
	t.Helper()
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpWrite, key, 0, 0, 0, val)
	if _, err := g.BatchAccess(reqs); err != nil {
		t.Fatal(err)
	}
}

func TestGroupBasicOperation(t *testing.T) {
	g, _ := newGroup(t, 1, 1)
	v, found := readKey(t, g, 2)
	if !found || !bytes.HasPrefix(v, []byte("two")) {
		t.Fatalf("read through group: %q %v", v, found)
	}
	writeKey(t, g, 2, []byte("TWO"))
	v, _ = readKey(t, g, 2)
	if !bytes.HasPrefix(v, []byte("TWO")) {
		t.Fatalf("write through group lost: %q", v)
	}
}

func TestGroupSurvivesCrashes(t *testing.T) {
	g, reps := newGroup(t, 2, 0)
	writeKey(t, g, 1, []byte("before"))
	reps[0].Fail()
	reps[2].Fail()
	v, found := readKey(t, g, 1)
	if !found || !bytes.HasPrefix(v, []byte("before")) {
		t.Fatalf("read with 2 crashed replicas: %q %v", v, found)
	}
}

func TestGroupDetectsRollback(t *testing.T) {
	g, reps := newGroup(t, 0, 1)
	writeKey(t, g, 3, []byte("v1"))
	// Roll one replica back to its initial sealed snapshot. Its reply
	// epoch will lag the trusted counter, so it must be excluded; the
	// fresh replica serves the correct value.
	if err := reps[1].Rollback(); err != nil {
		t.Fatal(err)
	}
	v, found := readKey(t, g, 3)
	if !found || !bytes.HasPrefix(v, []byte("v1")) {
		t.Fatalf("rolled-back replica leaked stale data: %q %v", v, found)
	}
}

func TestGroupAllStaleIsNoQuorum(t *testing.T) {
	g, reps := newGroup(t, 0, 0) // single replica, no tolerance
	writeKey(t, g, 1, []byte("x"))
	if err := reps[0].Rollback(); err != nil {
		t.Fatal(err)
	}
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, 1, 0, 0, 0, nil)
	if _, err := g.BatchAccess(reqs); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("expected ErrNoQuorum, got %v", err)
	}
}

func TestGroupAllCrashedIsNoQuorum(t *testing.T) {
	g, reps := newGroup(t, 1, 0)
	for _, r := range reps {
		r.Fail()
	}
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, 1, 0, 0, 0, nil)
	if _, err := g.BatchAccess(reqs); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("expected ErrNoQuorum, got %v", err)
	}
}

func TestGroupRecoveredStaleReplicaStaysExcluded(t *testing.T) {
	g, reps := newGroup(t, 1, 1)
	writeKey(t, g, 1, []byte("fresh"))
	reps[0].Fail()
	writeKey(t, g, 1, []byte("fresher")) // replica 0 misses this epoch
	reps[0].Recover()
	// Replica 0's epoch now lags; its replies are stale until resynced.
	v, found := readKey(t, g, 1)
	if !found || !bytes.HasPrefix(v, []byte("fresher")) {
		t.Fatalf("stale recovered replica served: %q %v", v, found)
	}
}

// divergentClient wraps a subORAM and corrupts every response.
type divergentClient struct{ inner Client }

func (d divergentClient) Init(ids []uint64, data []byte) error { return d.inner.Init(ids, data) }

func (d divergentClient) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	out, err := d.inner.BatchAccess(reqs)
	if err != nil {
		return nil, err
	}
	if out.Len() > 0 {
		out.Block(0)[0] ^= 0xFF
	}
	return out, nil
}

func TestGroupDetectsDivergence(t *testing.T) {
	reps := []*Replica{
		NewReplica(suboram.New(suboram.Config{BlockSize: testBlock})),
		NewReplica(divergentClient{suboram.New(suboram.Config{BlockSize: testBlock})}),
	}
	g, err := NewGroup(reps, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Init([]uint64{1}, make([]byte, testBlock)); err != nil {
		t.Fatal(err)
	}
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, 1, 0, 0, 0, nil)
	if _, err := g.BatchAccess(reqs); !errors.Is(err, ErrDivergence) {
		t.Fatalf("expected ErrDivergence, got %v", err)
	}
}

func TestGroupSizeValidation(t *testing.T) {
	if _, err := NewGroup([]*Replica{NewReplica(nil)}, nil, 1, 1); err == nil {
		t.Fatal("wrong replica count accepted")
	}
	if _, err := NewGroup(nil, nil, -1, 0); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestTrustedCounterMonotone(t *testing.T) {
	var c TrustedCounter
	if c.Current() != 0 {
		t.Fatal("counter should start at zero")
	}
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		v := c.Increment()
		if v <= prev {
			t.Fatal("counter not monotone")
		}
		prev = v
	}
}

// stalledClient wedges every BatchAccess until released — a replica whose
// host is alive but whose enclave never answers.
type stalledClient struct {
	Client
	release chan struct{}
}

func (s *stalledClient) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	<-s.release
	return s.Client.BatchAccess(reqs)
}

// TestRollbackNeverServedBeforeResync is the §9 rejoin trace test: a
// rolled-back member is excluded (stale epoch) until Resync completes, and
// only then serves clients again — with post-rollback state, not the stale
// snapshot.
func TestRollbackNeverServedBeforeResync(t *testing.T) {
	g, reps := newGroup(t, 0, 1)
	writeKey(t, g, 3, []byte("v1"))
	if err := reps[1].Rollback(); err != nil {
		t.Fatal(err)
	}

	// While rolled back and unsynced, the member must never be served back
	// to clients: with the only fresh member down, the answer is ErrNoQuorum
	// — not the rolled-back member's stale state.
	reps[0].Fail()
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, 3, 0, 0, 0, nil)
	if _, err := g.BatchAccess(reqs); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("rolled-back replica served before resync: err=%v", err)
	}
	reps[0].Recover()
	// Replica 0 missed one epoch while down, so it is stale too; resync
	// needs a fresh donor. Run one clean epoch first? No — no member is
	// fresh. Resync must report that honestly.
	if _, _, err := g.Resync(); !errors.Is(err, ErrNoDonor) {
		t.Fatalf("resync without a fresh donor: err=%v", err)
	}

	// Catch replica 0 up by reinitializing the group state path: roll it
	// forward via rollback+resync is impossible without a donor, so rebuild
	// freshness the way a deployment would — replica 0 rejoins by serving
	// batches once its epoch matches again. Here we reset via Rollback (back
	// to epoch 0 state) and replay nothing: instead verify the donor-based
	// path on a 3-member group below.
	g2, reps2 := newGroup(t, 1, 1)
	writeKey(t, g2, 3, []byte("v2"))
	if err := reps2[2].Rollback(); err != nil {
		t.Fatal(err)
	}
	st := g2.Stats()
	if st.Fresh != 3 {
		t.Fatalf("expected 3 fresh members before rollback batch, got %+v", st)
	}
	// One batch: the rolled-back member replies with a stale epoch and is
	// discarded.
	v, found := readKey(t, g2, 3)
	if !found || !bytes.HasPrefix(v, []byte("v2")) {
		t.Fatalf("stale member leaked: %q %v", v, found)
	}
	st = g2.Stats()
	if st.StaleReplies == 0 {
		t.Fatalf("stale reply not counted: %+v", st)
	}
	if st.Fresh != 2 {
		t.Fatalf("rolled-back member counted fresh: %+v", st)
	}
	// Resync re-admits it with post-rollback state.
	synced, bytes3, err := g2.Resync()
	if err != nil || synced != 1 || bytes3 == 0 {
		t.Fatalf("resync: synced=%d bytes=%d err=%v", synced, bytes3, err)
	}
	// Now the resynced member alone must serve the *current* value.
	reps2[0].Fail()
	reps2[1].Fail()
	v, found = readKey(t, g2, 3)
	if !found || !bytes.HasPrefix(v, []byte("v2")) {
		t.Fatalf("resynced member served wrong state: %q %v", v, found)
	}
	if st := g2.Stats(); st.Resyncs != 1 || st.ResyncEpochs == 0 {
		t.Fatalf("resync stats: %+v", st)
	}
}

// TestAutoHealResyncsLaggingReplica crashes a member for a few epochs;
// with auto-heal enabled, the recovered (now stale) member is resynced
// from a fresh peer without any operator call.
func TestAutoHealResyncsLaggingReplica(t *testing.T) {
	g, reps := newGroup(t, 1, 0)
	g.SetAutoHeal(2)
	reps[1].Fail()
	writeKey(t, g, 1, []byte("a"))
	writeKey(t, g, 1, []byte("b"))
	reps[1].Recover()
	// Recovered but stale: the next batches trip the miss threshold and
	// auto-heal resyncs it at the epoch boundary.
	writeKey(t, g, 1, []byte("c"))
	if st := g.Stats(); st.Resyncs == 0 {
		t.Fatalf("auto-heal did not resync the lagging member: %+v", st)
	}
	// The healed member alone serves the latest value.
	reps[0].Fail()
	v, found := readKey(t, g, 1)
	if !found || !bytes.HasPrefix(v, []byte("c")) {
		t.Fatalf("healed member state: %q %v", v, found)
	}
	if st := g.Stats(); st.Fresh != 1 {
		t.Fatalf("healed member not fresh: %+v", st)
	}
}

// TestAutoHealPromotesSpare kills a member permanently; auto-heal promotes
// a registered standby, loads it from a fresh peer, and the group returns
// to full strength.
func TestAutoHealPromotesSpare(t *testing.T) {
	g, reps := newGroup(t, 1, 0)
	g.SetAutoHeal(2)
	g.AddSpare(NewReplica(suboram.New(suboram.Config{BlockSize: testBlock})))
	reps[1].Fail() // never recovers
	writeKey(t, g, 2, []byte("x1"))
	writeKey(t, g, 2, []byte("x2"))
	writeKey(t, g, 2, []byte("x3"))
	st := g.Stats()
	if st.Promotions != 1 || st.Spares != 0 {
		t.Fatalf("spare not promoted: %+v", st)
	}
	// The promoted member must be fully fresh: it alone serves the latest
	// value when the original survivor fails.
	reps[0].Fail()
	v, found := readKey(t, g, 2)
	if !found || !bytes.HasPrefix(v, []byte("x3")) {
		t.Fatalf("promoted spare state: %q %v", v, found)
	}
}

// TestBusyReplicaSkippedNotBlocked verifies the abandoned-call fix: a
// wedged BatchAccess holds the member's lock, but later epochs skip the
// busy member immediately instead of queueing behind it, and once the call
// unwedges the member rejoins via resync.
func TestBusyReplicaSkippedNotBlocked(t *testing.T) {
	release := make(chan struct{})
	stuck := &stalledClient{
		Client:  suboram.New(suboram.Config{BlockSize: testBlock}),
		release: release,
	}
	live := NewReplica(suboram.New(suboram.Config{BlockSize: testBlock}))
	wedged := NewReplica(stuck)
	g, err := NewGroup([]*Replica{live, wedged}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint64{1}
	data := make([]byte, testBlock)
	copy(data, []byte("one"))
	if err := g.Init(ids, data); err != nil {
		t.Fatal(err)
	}
	g.SetTimeout(200 * time.Millisecond)

	// First batch abandons the wedged member at the deadline; it keeps
	// holding its lock inside the stalled call.
	writeKey(t, g, 1, []byte("two"))
	// Later batches must return promptly (busy skip, not a 200ms deadline
	// wait behind the held lock) and still serve from the live member.
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		v, found := readKey(t, g, 1)
		if !found || !bytes.HasPrefix(v, []byte("two")) {
			t.Fatalf("read during wedge: %q %v", v, found)
		}
		if d := time.Since(t0); d > 5*time.Second {
			t.Fatalf("batch %d blocked %v behind a wedged member", i, d)
		}
	}
	if st := g.Stats(); st.BusySkips == 0 {
		t.Fatalf("busy member was not skipped: %+v", st)
	}

	// Unwedge: the abandoned call completes, the member is reachable again
	// (stale), and resync re-admits it.
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if synced, _, err := g.Resync(); err == nil && synced == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wedged member never became resyncable after release")
		}
		time.Sleep(10 * time.Millisecond)
	}
	live.Fail()
	v, found := readKey(t, g, 1)
	if !found || !bytes.HasPrefix(v, []byte("two")) {
		t.Fatalf("rejoined member state: %q %v", v, found)
	}
}

// TestDigestDuplicateSensitive regression-tests the XOR-fold collision: a
// response set extended by a duplicated row pair must not hash equal (the
// pair cancelled to zero under the XOR fold).
func TestDigestDuplicateSensitive(t *testing.T) {
	base := store.NewRequests(2, testBlock)
	base.SetRow(0, store.OpRead, 10, 0, 0, 0, []byte("aa"))
	base.SetRow(1, store.OpRead, 11, 0, 0, 0, []byte("bb"))
	dup := store.NewRequests(4, testBlock)
	dup.SetRow(0, store.OpRead, 10, 0, 0, 0, []byte("aa"))
	dup.SetRow(1, store.OpRead, 11, 0, 0, 0, []byte("bb"))
	dup.SetRow(2, store.OpRead, 12, 0, 0, 0, []byte("cc"))
	dup.SetRow(3, store.OpRead, 12, 0, 0, 0, []byte("cc"))
	if digestResponses(base) == digestResponses(dup) {
		t.Fatal("duplicated row pair cancelled out of the response digest")
	}
	// Order-independence must survive the fix: same rows, swapped order.
	swapped := store.NewRequests(2, testBlock)
	swapped.SetRow(0, store.OpRead, 11, 0, 0, 0, []byte("bb"))
	swapped.SetRow(1, store.OpRead, 10, 0, 0, 0, []byte("aa"))
	if digestResponses(base) != digestResponses(swapped) {
		t.Fatal("response digest became order-sensitive")
	}
}

func TestGroupTimeoutSkipsStalledReplica(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	live := NewReplica(suboram.New(suboram.Config{BlockSize: testBlock}))
	stuck := NewReplica(&stalledClient{
		Client:  suboram.New(suboram.Config{BlockSize: testBlock}),
		release: release,
	})
	g, err := NewGroup([]*Replica{live, stuck}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Init goes through the stalled wrapper's embedded client directly, so
	// it completes; only BatchAccess stalls.
	ids := []uint64{1}
	data := make([]byte, testBlock)
	copy(data, []byte("one"))
	if err := g.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	// Generous deadline: the live replica must comfortably beat it even
	// under the race detector, while the stalled one never answers.
	g.SetTimeout(2 * time.Second)
	t0 := time.Now()
	v, found := readKey(t, g, 1)
	if d := time.Since(t0); d > 10*time.Second {
		t.Fatalf("stalled replica held the batch for %v despite the deadline", d)
	}
	if !found || !bytes.HasPrefix(v, []byte("one")) {
		t.Fatalf("read with stalled replica: %q %v", v, found)
	}
}
