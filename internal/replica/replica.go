// Package replica implements the fault-tolerance and rollback-protection
// extension the paper sketches in §9: each logical subORAM is replicated
// to f+r+1 nodes, where f bounds crash failures and r bounds replicas an
// attacker can roll back to stale (but validly sealed) state. A trusted
// monotonic counter (the ROTE / SGX-counter abstraction, invoked once per
// epoch exactly as §9 prescribes) identifies the current epoch; every
// replica's reply carries the epoch its state reflects, so stale replies
// from rolled-back replicas are detected and discarded. Surviving replies
// are cross-checked for agreement before one is returned.
//
// Beyond masking faults, a Group closes the failure loop: a stale or
// recovered member is resynchronized from a fresh peer (Resync, or
// automatically via SetAutoHeal) — the transfer is a whole sealed
// partition whose size is a public function of partition size, so rejoin
// leaks nothing beyond what Theorem 3 already makes public — and a member
// that stays unreachable is replaced by a registered standby (AddSpare /
// Promote). A resynced or promoted member is re-admitted only once its
// reply epoch matches the trusted counter again.
//
// Group implements core.SubORAMClient, so a replicated partition drops
// into the system wherever a plain subORAM does.
package replica

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snoopy/internal/store"
	"snoopy/internal/telemetry"
)

// Client is the subORAM interface being replicated (kept structural to
// avoid an import cycle with core).
type Client interface {
	Init(ids []uint64, data []byte) error
	BatchAccess(reqs *store.Requests) (*store.Requests, error)
}

// exporter is the optional whole-partition state read used as the donor
// side of resynchronization. *suboram.SubORAM and *persist.Durable both
// implement it.
type exporter interface {
	Export() (ids []uint64, data []byte, err error)
}

// restorer is the optional fast-path state import used as the receiving
// side of resynchronization; clients without it fall back to Init.
type restorer interface {
	Restore(ids []uint64, data []byte) error
}

// ErrNoQuorum is returned when no replica produced a fresh, valid reply.
var ErrNoQuorum = errors.New("replica: no fresh replica reply available")

// ErrDivergence is returned when fresh replicas disagree — state
// corruption that replication cannot mask.
var ErrDivergence = errors.New("replica: fresh replicas disagree")

// ErrNoDonor is returned by Resync when no fresh, idle replica exists to
// export state from.
var ErrNoDonor = errors.New("replica: no fresh donor replica for resync")

// Counter is the trusted monotonic counter abstraction of §9 (ROTE or the
// SGX counter service). Increment is called once per epoch.
type Counter interface {
	Increment() uint64
	Current() uint64
}

// TrustedCounter is an in-enclave counter simulation.
type TrustedCounter struct{ v atomic.Uint64 }

// Increment advances and returns the counter.
func (c *TrustedCounter) Increment() uint64 { return c.v.Add(1) }

// Current returns the counter without advancing it.
func (c *TrustedCounter) Current() uint64 { return c.v.Load() }

// Replica wraps one replicated node: the node's enclave binds each reply
// to the epoch its sealed state reflects.
type Replica struct {
	mu     sync.Mutex
	client Client
	epoch  uint64
	downed bool

	// initState allows the test hooks to simulate rollback (restoring
	// stale-but-valid sealed state).
	initIDs  []uint64
	initData []byte
}

// NewReplica wraps a node.
func NewReplica(c Client) *Replica { return &Replica{client: c} }

// Fail marks the replica crashed (test / chaos hook).
func (r *Replica) Fail() {
	r.mu.Lock()
	r.downed = true
	r.mu.Unlock()
}

// Recover brings a crashed replica back — with whatever state it has,
// which may be stale; the epoch check handles that (and Resync repairs it).
func (r *Replica) Recover() {
	r.mu.Lock()
	r.downed = false
	r.mu.Unlock()
}

// Rollback simulates the §9 attack: the host restarts the enclave from an
// old sealed snapshot. State and the sealed epoch both revert.
func (r *Replica) Rollback() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.client.Init(r.initIDs, r.initData); err != nil {
		return err
	}
	r.epoch = 0
	return nil
}

// Epoch returns the epoch the replica's state reflects (test / chaos hook).
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// GroupStats counts the group's failure-handling events. All counters are
// cumulative since the group was created.
type GroupStats struct {
	// StaleReplies counts replies discarded because their sealed epoch
	// lagged the trusted counter (rolled-back or catch-up members).
	StaleReplies uint64
	// BusySkips counts batches that skipped a member because a previous
	// (abandoned) call was still running on it.
	BusySkips uint64
	// Resyncs counts members re-admitted by sealed state transfer;
	// ResyncBytes and ResyncEpochs total the transferred partition bytes
	// and the epochs of lag repaired.
	Resyncs      uint64
	ResyncBytes  uint64
	ResyncEpochs uint64
	// Promotions counts standby replicas promoted into the group.
	Promotions uint64
	// Fresh is the number of members whose reply matched the trusted
	// counter in the most recent batch; Members and Spares size the group.
	Fresh   int
	Members int
	Spares  int
}

// Group is a replicated logical subORAM.
type Group struct {
	counter Counter
	f, r    int
	timeout time.Duration

	// gmu guards membership, the miss ledger, the init snapshot, and stats.
	gmu       sync.Mutex
	replicas  []*Replica
	spares    []*Replica
	misses    []int // consecutive batches each member missed
	healAfter int   // 0 disables auto-heal
	initIDs   []uint64
	initData  []byte
	stats     GroupStats

	// Telemetry counters mirroring GroupStats, bumped at the same sites;
	// all nil (no-ops) until SetTelemetry.
	telStale       *telemetry.Counter
	telBusy        *telemetry.Counter
	telResyncs     *telemetry.Counter
	telResyncBytes *telemetry.Counter
	telPromotions  *telemetry.Counter
}

// SetTelemetry mirrors the group's failure-handling counters (stale
// replies, busy skips, resyncs and bytes transferred, promotions) into a
// telemetry registry. Every event already appears in GroupStats; this adds
// no new observation, only an export path.
func (g *Group) SetTelemetry(reg *telemetry.Registry) {
	g.gmu.Lock()
	g.telStale = reg.Counter("replica_stale_replies_total")
	g.telBusy = reg.Counter("replica_busy_skips_total")
	g.telResyncs = reg.Counter("replica_resyncs_total")
	g.telResyncBytes = reg.Counter("replica_resync_bytes_total")
	g.telPromotions = reg.Counter("replica_promotions_total")
	g.gmu.Unlock()
}

// SetTimeout bounds each replica's per-batch reply time; a replica that
// misses the deadline is counted as failed for that batch, so one stalled
// replica cannot stall the whole quorum. The abandoned call keeps running
// on its own; until it finishes, later batches skip that member (busy)
// instead of queueing behind it, and once it finishes the member rejoins
// — stale, until Resync or auto-heal catches it up. Zero (the default)
// waits forever. The timeout is public deployment configuration, like
// every other timing parameter in the system.
func (g *Group) SetTimeout(d time.Duration) { g.timeout = d }

// SetAutoHeal enables self-healing: after a member misses that many
// consecutive batches (crashed, stalled, rolled back, or lagging), the
// group repairs it at the next epoch boundary — resynchronizing it from a
// fresh peer when the member is reachable, or promoting a registered spare
// in its place when it is not. The threshold is public deployment
// configuration. Zero disables (the default).
func (g *Group) SetAutoHeal(afterMisses int) {
	g.gmu.Lock()
	g.healAfter = afterMisses
	g.gmu.Unlock()
}

// AddSpare registers a standby node. Spares hold no state until promoted;
// promotion loads them from a fresh member's sealed state.
func (g *Group) AddSpare(rep *Replica) {
	g.gmu.Lock()
	g.spares = append(g.spares, rep)
	g.stats.Spares = len(g.spares)
	g.gmu.Unlock()
}

// NewGroup builds a group tolerating f crashes and r rollbacks; it
// requires exactly f+r+1 replicas (paper §9).
func NewGroup(replicas []*Replica, counter Counter, f, r int) (*Group, error) {
	if f < 0 || r < 0 {
		return nil, fmt.Errorf("replica: negative fault bounds")
	}
	if len(replicas) != f+r+1 {
		return nil, fmt.Errorf("replica: need f+r+1 = %d replicas, have %d", f+r+1, len(replicas))
	}
	if counter == nil {
		counter = &TrustedCounter{}
	}
	g := &Group{replicas: replicas, counter: counter, f: f, r: r}
	g.misses = make([]int, len(replicas))
	g.stats.Members = len(replicas)
	return g, nil
}

// Init loads all replicas and records the snapshot rollbacks revert to.
func (g *Group) Init(ids []uint64, data []byte) error {
	g.gmu.Lock()
	g.initIDs = append([]uint64(nil), ids...)
	g.initData = append([]byte(nil), data...)
	reps := append([]*Replica(nil), g.replicas...)
	g.gmu.Unlock()
	var errs []error
	for _, rep := range reps {
		rep.mu.Lock()
		rep.initIDs = append([]uint64(nil), ids...)
		rep.initData = append([]byte(nil), data...)
		rep.epoch = 0
		err := rep.client.Init(ids, data)
		rep.mu.Unlock()
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Stats returns the group's cumulative failure-handling counters.
func (g *Group) Stats() GroupStats {
	g.gmu.Lock()
	defer g.gmu.Unlock()
	return g.stats
}

// BatchAccess executes the batch on every live replica, advances the
// trusted counter, discards stale or crashed replies, verifies the
// remainder agree, and returns one of them. With auto-heal enabled,
// persistently missing members are repaired afterwards, at the epoch
// boundary.
func (g *Group) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	epoch := g.counter.Increment()
	g.gmu.Lock()
	reps := append([]*Replica(nil), g.replicas...)
	g.gmu.Unlock()

	type reply struct {
		out   *store.Requests
		epoch uint64
		err   error
		busy  bool
	}
	replies := make([]reply, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		i, rep := i, rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Clone the batch before anything can be abandoned: the caller
			// may release reqs' storage (arena reuse) as soon as BatchAccess
			// returns, and an abandoned call outlives that return — it must
			// never touch the shared batch after the deadline.
			cl := reqs.Clone()
			// The replica's work runs in its own goroutine so a stalled
			// replica (deadlocked enclave, dead host behind a live TCP
			// session) can be abandoned at the deadline; the abandoned call
			// finishes — or not — on its own, and its reply is discarded.
			// TryLock keeps later batches from queueing behind an abandoned
			// call: a busy member is skipped for this batch, not blocked on.
			done := make(chan reply, 1)
			go func() {
				if !rep.mu.TryLock() {
					done <- reply{err: fmt.Errorf("replica %d busy with an abandoned batch", i), busy: true}
					return
				}
				defer rep.mu.Unlock()
				if rep.downed {
					done <- reply{err: fmt.Errorf("replica %d down", i)}
					return
				}
				out, err := rep.client.BatchAccess(cl)
				if err != nil {
					done <- reply{err: err}
					return
				}
				rep.epoch++
				done <- reply{out: out, epoch: rep.epoch}
			}()
			if g.timeout <= 0 {
				replies[i] = <-done
				return
			}
			timer := time.NewTimer(g.timeout)
			defer timer.Stop()
			select {
			case rp := <-done:
				replies[i] = rp
			case <-timer.C:
				replies[i] = reply{err: fmt.Errorf("replica %d: no reply within %v", i, g.timeout)}
			}
		}()
	}
	wg.Wait()

	// Keep only replies whose sealed epoch matches the trusted counter, and
	// settle the per-member miss ledger that drives auto-heal.
	var fresh []*store.Requests
	g.gmu.Lock()
	for i, rp := range replies {
		miss := true
		switch {
		case rp.err == nil && rp.epoch == epoch:
			miss = false
			fresh = append(fresh, rp.out)
		case rp.err == nil:
			g.stats.StaleReplies++
			g.telStale.Inc()
		case rp.busy:
			g.stats.BusySkips++
			g.telBusy.Inc()
		}
		// Membership may have changed since the snapshot (concurrent
		// promotion); only account members still in place.
		if i < len(g.replicas) && g.replicas[i] == reps[i] {
			if miss {
				g.misses[i]++
			} else {
				g.misses[i] = 0
			}
		}
	}
	g.stats.Fresh = len(fresh)
	heal := g.healAfter > 0 && len(fresh) > 0
	g.gmu.Unlock()

	if heal {
		g.heal()
	}
	if len(fresh) == 0 {
		return nil, ErrNoQuorum
	}
	want := digestResponses(fresh[0])
	for _, out := range fresh[1:] {
		if digestResponses(out) != want {
			return nil, ErrDivergence
		}
	}
	return fresh[0], nil
}

// Resync copies a fresh member's whole sealed state into every reachable
// stale member, re-admitting it at the current trusted-counter epoch. The
// transfer is one full partition image — its size is a public function of
// partition size, so a rejoin leaks nothing beyond what Theorem 3 already
// makes public. Members that are down or busy are left for a later pass
// (or for spare promotion). It returns how many members were resynced and
// the bytes transferred.
func (g *Group) Resync() (synced int, bytes int, err error) {
	g.gmu.Lock()
	reps := append([]*Replica(nil), g.replicas...)
	g.gmu.Unlock()
	ids, data, donor, err := g.exportFresh(reps)
	if err != nil {
		return 0, 0, err
	}
	for i, rep := range reps {
		if rep == donor {
			continue
		}
		if n, ok := g.resyncMember(rep, ids, data); ok {
			synced++
			bytes += n
			g.gmu.Lock()
			if i < len(g.misses) && g.replicas[i] == rep {
				g.misses[i] = 0
			}
			g.gmu.Unlock()
		}
	}
	return synced, bytes, nil
}

// exportFresh locates a fresh, idle member and exports its state.
func (g *Group) exportFresh(reps []*Replica) (ids []uint64, data []byte, donor *Replica, err error) {
	cur := g.counter.Current()
	for _, rep := range reps {
		if !rep.mu.TryLock() {
			continue
		}
		if rep.downed || rep.epoch != cur {
			rep.mu.Unlock()
			continue
		}
		exp, ok := rep.client.(exporter)
		if !ok {
			rep.mu.Unlock()
			return nil, nil, nil, fmt.Errorf("replica: donor does not support state export")
		}
		ids, data, err = exp.Export()
		rep.mu.Unlock()
		if err != nil {
			return nil, nil, nil, err
		}
		return ids, data, rep, nil
	}
	return nil, nil, nil, ErrNoDonor
}

// resyncMember loads donor state into rep if it is reachable and stale,
// re-admitting it at the current epoch. Reports whether a transfer ran and
// how many bytes it moved.
func (g *Group) resyncMember(rep *Replica, ids []uint64, data []byte) (int, bool) {
	cur := g.counter.Current()
	if !rep.mu.TryLock() {
		return 0, false
	}
	defer rep.mu.Unlock()
	if rep.downed || rep.epoch == cur {
		return 0, false
	}
	if err := restoreClient(rep.client, ids, data); err != nil {
		return 0, false
	}
	lag := cur - rep.epoch
	rep.epoch = cur
	g.gmu.Lock()
	g.stats.Resyncs++
	g.stats.ResyncBytes += uint64(len(data))
	g.stats.ResyncEpochs += lag
	g.telResyncs.Inc()
	g.telResyncBytes.Add(uint64(len(data)))
	g.gmu.Unlock()
	return len(data), true
}

// Promote replaces member i with a registered spare, loading the spare
// from a fresh member's sealed state first so it joins at the current
// epoch. The replaced member is discarded (it may still be wedged in an
// abandoned call; nothing waits for it).
func (g *Group) Promote(i int) error {
	g.gmu.Lock()
	if i < 0 || i >= len(g.replicas) {
		g.gmu.Unlock()
		return fmt.Errorf("replica: promote index %d out of range", i)
	}
	if len(g.spares) == 0 {
		g.gmu.Unlock()
		return fmt.Errorf("replica: no spare to promote")
	}
	reps := append([]*Replica(nil), g.replicas...)
	g.gmu.Unlock()

	ids, data, _, err := g.exportFresh(reps)
	if err != nil {
		return err
	}
	g.gmu.Lock()
	if len(g.spares) == 0 {
		g.gmu.Unlock()
		return fmt.Errorf("replica: no spare to promote")
	}
	spare := g.spares[0]
	g.spares = g.spares[1:]
	initIDs := append([]uint64(nil), g.initIDs...)
	initData := append([]byte(nil), g.initData...)
	g.gmu.Unlock()

	spare.mu.Lock()
	err = restoreClient(spare.client, ids, data)
	if err == nil {
		spare.epoch = g.counter.Current()
		spare.downed = false
		spare.initIDs = initIDs
		spare.initData = initData
	}
	spare.mu.Unlock()
	if err != nil {
		// Put the unused spare back.
		g.gmu.Lock()
		g.spares = append([]*Replica{spare}, g.spares...)
		g.stats.Spares = len(g.spares)
		g.gmu.Unlock()
		return err
	}

	g.gmu.Lock()
	g.replicas[i] = spare
	g.misses[i] = 0
	g.stats.Promotions++
	g.telPromotions.Inc()
	g.stats.Spares = len(g.spares)
	g.gmu.Unlock()
	return nil
}

// heal repairs members whose miss run reached the auto-heal threshold:
// reachable stale members are resynced from a fresh peer; unreachable ones
// are replaced by a spare when one is registered.
func (g *Group) heal() {
	g.gmu.Lock()
	threshold := g.healAfter
	reps := append([]*Replica(nil), g.replicas...)
	victims := make([]int, 0, len(reps))
	for i, m := range g.misses {
		if threshold > 0 && m >= threshold {
			victims = append(victims, i)
		}
	}
	hasSpare := len(g.spares) > 0
	g.gmu.Unlock()
	if len(victims) == 0 {
		return
	}
	ids, data, donor, err := g.exportFresh(reps)
	if err != nil {
		return // no fresh donor this epoch; try again next epoch
	}
	for _, i := range victims {
		rep := reps[i]
		if rep == donor {
			continue
		}
		if _, ok := g.resyncMember(rep, ids, data); ok {
			g.gmu.Lock()
			if i < len(g.misses) && g.replicas[i] == rep {
				g.misses[i] = 0
			}
			g.gmu.Unlock()
			continue
		}
		// Unreachable (down or wedged): promote a standby in its place.
		if hasSpare {
			if err := g.Promote(i); err == nil {
				g.gmu.Lock()
				hasSpare = len(g.spares) > 0
				g.gmu.Unlock()
			}
		}
	}
}

// restoreClient imports a state image via the fast Restore path when the
// client supports it, falling back to a full Init.
func restoreClient(c Client, ids []uint64, data []byte) error {
	if r, ok := c.(restorer); ok {
		return r.Restore(ids, data)
	}
	return c.Init(ids, data)
}

// digestResponses hashes the response contents (key → value/found
// mapping). Row order is not semantically meaningful, so per-row digests
// are sorted before the final fold — unlike an XOR fold, this is
// duplicate-sensitive: response sets differing by a duplicated row pair
// hash differently.
func digestResponses(out *store.Requests) [sha256.Size]byte {
	rows := make([][sha256.Size]byte, out.Len())
	for i := 0; i < out.Len(); i++ {
		h := sha256.New()
		var kb [9]byte
		binary.LittleEndian.PutUint64(kb[:8], out.Key[i])
		kb[8] = out.Aux[i]
		h.Write(kb[:])
		h.Write(out.Block(i))
		h.Sum(rows[i][:0])
	}
	sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i][:], rows[j][:]) < 0 })
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(rows)))
	h.Write(n[:])
	for i := range rows {
		h.Write(rows[i][:])
	}
	var acc [sha256.Size]byte
	h.Sum(acc[:0])
	return acc
}
