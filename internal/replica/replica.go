// Package replica implements the fault-tolerance and rollback-protection
// extension the paper sketches in §9: each logical subORAM is replicated
// to f+r+1 nodes, where f bounds crash failures and r bounds replicas an
// attacker can roll back to stale (but validly sealed) state. A trusted
// monotonic counter (the ROTE / SGX-counter abstraction, invoked once per
// epoch exactly as §9 prescribes) identifies the current epoch; every
// replica's reply carries the epoch its state reflects, so stale replies
// from rolled-back replicas are detected and discarded. Surviving replies
// are cross-checked for agreement before one is returned.
//
// Group implements core.SubORAMClient, so a replicated partition drops
// into the system wherever a plain subORAM does.
package replica

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snoopy/internal/store"
)

// Client is the subORAM interface being replicated (kept structural to
// avoid an import cycle with core).
type Client interface {
	Init(ids []uint64, data []byte) error
	BatchAccess(reqs *store.Requests) (*store.Requests, error)
}

// ErrNoQuorum is returned when no replica produced a fresh, valid reply.
var ErrNoQuorum = errors.New("replica: no fresh replica reply available")

// ErrDivergence is returned when fresh replicas disagree — state
// corruption that replication cannot mask.
var ErrDivergence = errors.New("replica: fresh replicas disagree")

// Counter is the trusted monotonic counter abstraction of §9 (ROTE or the
// SGX counter service). Increment is called once per epoch.
type Counter interface {
	Increment() uint64
	Current() uint64
}

// TrustedCounter is an in-enclave counter simulation.
type TrustedCounter struct{ v atomic.Uint64 }

// Increment advances and returns the counter.
func (c *TrustedCounter) Increment() uint64 { return c.v.Add(1) }

// Current returns the counter without advancing it.
func (c *TrustedCounter) Current() uint64 { return c.v.Load() }

// Replica wraps one replicated node: the node's enclave binds each reply
// to the epoch its sealed state reflects.
type Replica struct {
	mu     sync.Mutex
	client Client
	epoch  uint64
	downed bool

	// initState allows the test hooks to simulate rollback (restoring
	// stale-but-valid sealed state).
	initIDs  []uint64
	initData []byte
}

// NewReplica wraps a node.
func NewReplica(c Client) *Replica { return &Replica{client: c} }

// Fail marks the replica crashed (test / chaos hook).
func (r *Replica) Fail() {
	r.mu.Lock()
	r.downed = true
	r.mu.Unlock()
}

// Recover brings a crashed replica back — with whatever state it has,
// which may be stale; the epoch check handles that.
func (r *Replica) Recover() {
	r.mu.Lock()
	r.downed = false
	r.mu.Unlock()
}

// Rollback simulates the §9 attack: the host restarts the enclave from an
// old sealed snapshot. State and the sealed epoch both revert.
func (r *Replica) Rollback() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.client.Init(r.initIDs, r.initData); err != nil {
		return err
	}
	r.epoch = 0
	return nil
}

// Group is a replicated logical subORAM.
type Group struct {
	replicas []*Replica
	counter  Counter
	f, r     int
	timeout  time.Duration
}

// SetTimeout bounds each replica's per-batch reply time; a replica that
// misses the deadline is counted as failed for that batch, so one stalled
// replica cannot stall the whole quorum (it can still catch up later —
// its late reply is simply discarded). Zero (the default) waits forever.
// The timeout is public deployment configuration, like every other timing
// parameter in the system.
func (g *Group) SetTimeout(d time.Duration) { g.timeout = d }

// NewGroup builds a group tolerating f crashes and r rollbacks; it
// requires exactly f+r+1 replicas (paper §9).
func NewGroup(replicas []*Replica, counter Counter, f, r int) (*Group, error) {
	if f < 0 || r < 0 {
		return nil, fmt.Errorf("replica: negative fault bounds")
	}
	if len(replicas) != f+r+1 {
		return nil, fmt.Errorf("replica: need f+r+1 = %d replicas, have %d", f+r+1, len(replicas))
	}
	if counter == nil {
		counter = &TrustedCounter{}
	}
	return &Group{replicas: replicas, counter: counter, f: f, r: r}, nil
}

// Init loads all replicas and records the snapshot rollbacks revert to.
func (g *Group) Init(ids []uint64, data []byte) error {
	var errs []error
	for _, rep := range g.replicas {
		rep.mu.Lock()
		rep.initIDs = append([]uint64(nil), ids...)
		rep.initData = append([]byte(nil), data...)
		rep.epoch = 0
		err := rep.client.Init(ids, data)
		rep.mu.Unlock()
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// BatchAccess executes the batch on every live replica, advances the
// trusted counter, discards stale or crashed replies, verifies the
// remainder agree, and returns one of them.
func (g *Group) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	epoch := g.counter.Increment()

	type reply struct {
		out   *store.Requests
		epoch uint64
		err   error
	}
	replies := make([]reply, len(g.replicas))
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		i, rep := i, rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The replica's work runs in its own goroutine so a stalled
			// replica (deadlocked enclave, dead host behind a live TCP
			// session) can be abandoned at the deadline; the abandoned call
			// finishes — or not — on its own, and its reply is discarded.
			done := make(chan reply, 1)
			go func() {
				rep.mu.Lock()
				defer rep.mu.Unlock()
				if rep.downed {
					done <- reply{err: fmt.Errorf("replica %d down", i)}
					return
				}
				out, err := rep.client.BatchAccess(reqs.Clone())
				if err != nil {
					done <- reply{err: err}
					return
				}
				rep.epoch++
				done <- reply{out: out, epoch: rep.epoch}
			}()
			if g.timeout <= 0 {
				replies[i] = <-done
				return
			}
			timer := time.NewTimer(g.timeout)
			defer timer.Stop()
			select {
			case rp := <-done:
				replies[i] = rp
			case <-timer.C:
				replies[i] = reply{err: fmt.Errorf("replica %d: no reply within %v", i, g.timeout)}
			}
		}()
	}
	wg.Wait()

	// Keep only replies whose sealed epoch matches the trusted counter.
	var fresh []*store.Requests
	for _, rp := range replies {
		if rp.err != nil || rp.epoch != epoch {
			continue
		}
		fresh = append(fresh, rp.out)
	}
	if len(fresh) == 0 {
		return nil, ErrNoQuorum
	}
	want := digestResponses(fresh[0])
	for _, out := range fresh[1:] {
		if digestResponses(out) != want {
			return nil, ErrDivergence
		}
	}
	return fresh[0], nil
}

// digestResponses hashes the response contents (key → value/found mapping;
// row order is not semantically meaningful, so rows are folded
// order-independently).
func digestResponses(out *store.Requests) [sha256.Size]byte {
	var acc [sha256.Size]byte
	for i := 0; i < out.Len(); i++ {
		h := sha256.New()
		var kb [9]byte
		for b := 0; b < 8; b++ {
			kb[b] = byte(out.Key[i] >> (8 * b))
		}
		kb[8] = out.Aux[i]
		h.Write(kb[:])
		h.Write(out.Block(i))
		var row [sha256.Size]byte
		h.Sum(row[:0])
		for b := range acc {
			acc[b] ^= row[b]
		}
	}
	return acc
}
