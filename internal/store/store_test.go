package store

import (
	"bytes"
	"testing"

	"snoopy/internal/obliv"
)

func TestOSwapAndCopy(t *testing.T) {
	r := NewRequests(2, 16)
	r.SetRow(0, OpWrite, 10, 3, 100, 7, []byte("alpha"))
	r.SetRow(1, OpRead, 20, 5, 200, 8, []byte("beta"))

	r.OSwap(0, 0, 1)
	if r.Key[0] != 10 || r.Key[1] != 20 {
		t.Fatal("OSwap(0) swapped")
	}
	r.OSwap(1, 0, 1)
	if r.Key[0] != 20 || r.Key[1] != 10 || r.Op[0] != OpRead || r.Op[1] != OpWrite {
		t.Fatal("OSwap(1) failed")
	}
	if !bytes.HasPrefix(r.Block(0), []byte("beta")) || !bytes.HasPrefix(r.Block(1), []byte("alpha")) {
		t.Fatal("OSwap(1) did not swap data blocks")
	}

	r.OCopyRow(1, 0, 1)
	if r.Key[0] != 10 || !bytes.HasPrefix(r.Block(0), []byte("alpha")) {
		t.Fatal("OCopyRow(1) failed")
	}
	r.SetRow(0, OpRead, 99, 0, 0, 0, nil)
	r.OCopyRow(0, 0, 1)
	if r.Key[0] != 99 {
		t.Fatal("OCopyRow(0) modified dst")
	}
}

func TestOCopyRowFrom(t *testing.T) {
	a := NewRequests(1, 8)
	b := NewRequests(1, 8)
	b.SetRow(0, OpWrite, 42, 1, 2, 3, []byte("xyz"))
	a.OCopyRowFrom(1, 0, b, 0)
	if a.Key[0] != 42 || !bytes.HasPrefix(a.Block(0), []byte("xyz")) {
		t.Fatal("OCopyRowFrom failed")
	}
}

func TestSetRowZeroesStaleData(t *testing.T) {
	r := NewRequests(1, 8)
	r.SetRow(0, OpWrite, 1, 0, 0, 0, []byte("longdata"))
	r.SetRow(0, OpWrite, 1, 0, 0, 0, []byte("ab"))
	want := []byte{'a', 'b', 0, 0, 0, 0, 0, 0}
	if !bytes.Equal(r.Block(0), want) {
		t.Fatalf("stale data not zeroed: %q", r.Block(0))
	}
}

func TestViewAliases(t *testing.T) {
	r := NewRequests(4, 8)
	for i := 0; i < 4; i++ {
		r.SetRow(i, OpRead, uint64(i), 0, 0, 0, nil)
	}
	v := r.View(1, 3)
	if v.Len() != 2 || v.Key[0] != 1 || v.Key[1] != 2 {
		t.Fatal("View window wrong")
	}
	v.Key[0] = 77
	if r.Key[1] != 77 {
		t.Fatal("View must alias parent")
	}
}

func TestConcatAndClone(t *testing.T) {
	a := NewRequests(2, 8)
	b := NewRequests(1, 8)
	a.SetRow(0, OpRead, 1, 0, 0, 0, nil)
	a.SetRow(1, OpRead, 2, 0, 0, 0, nil)
	b.SetRow(0, OpWrite, 3, 0, 0, 0, []byte("v"))
	c := Concat(a, b)
	if c.Len() != 3 || c.Key[2] != 3 || c.Op[2] != OpWrite {
		t.Fatal("Concat wrong")
	}
	d := c.Clone()
	d.Key[0] = 99
	if c.Key[0] == 99 {
		t.Fatal("Clone must not alias")
	}
}

func TestDummyKeySpace(t *testing.T) {
	if IsDummyKey(42) || !IsDummyKey(DummyKeyBit|42) {
		t.Fatal("dummy key predicate wrong")
	}
	if DummyMark(42) != 0 || DummyMark(DummyKeyBit|7) != 1 {
		t.Fatal("DummyMark wrong")
	}
}

func TestBySubKeyWriteSeqOrdering(t *testing.T) {
	// Requests across 2 subORAMs with duplicates and a dummy; after sorting,
	// each subORAM group is contiguous, dummies last, and the first record
	// of each duplicate run is the latest write.
	r := NewRequests(7, 8)
	r.SetRow(0, OpRead, 5, 1, 1, 0, nil)
	r.SetRow(1, OpWrite, 5, 1, 2, 0, []byte("w2"))
	r.SetRow(2, OpWrite, 5, 1, 9, 0, []byte("w9"))
	r.SetRow(3, OpRead, 3, 0, 4, 0, nil)
	r.SetRow(4, OpRead, DummyKeyBit|1, 1, 0, 0, nil)
	r.SetRow(5, OpWrite, 3, 0, 8, 0, []byte("w8"))
	r.SetRow(6, OpRead, 7, 1, 3, 0, nil)

	obliv.Sort(BySubKeyWriteSeq{r})

	wantKeys := []uint64{3, 3, 5, 5, 5, 7, DummyKeyBit | 1}
	wantSubs := []uint32{0, 0, 1, 1, 1, 1, 1}
	for i := range wantKeys {
		if r.Key[i] != wantKeys[i] || r.Sub[i] != wantSubs[i] {
			t.Fatalf("slot %d: key=%d sub=%d, want key=%d sub=%d",
				i, r.Key[i], r.Sub[i], wantKeys[i], wantSubs[i])
		}
	}
	// Representative of key 3 run is the write (seq 8); of key 5 run the
	// seq-9 write.
	if r.Op[0] != OpWrite || r.Seq[0] != 8 {
		t.Fatalf("key 3 representative wrong: op=%d seq=%d", r.Op[0], r.Seq[0])
	}
	if r.Op[2] != OpWrite || r.Seq[2] != 9 {
		t.Fatalf("key 5 representative wrong: op=%d seq=%d", r.Op[2], r.Seq[2])
	}
}

func TestByKeyTagOrdering(t *testing.T) {
	r := NewRequests(4, 8)
	r.SetRow(0, OpRead, 5, 0, 0, 0, nil)
	r.Tag[0] = 1 // request
	r.SetRow(1, OpRead, 5, 0, 0, 0, nil)
	r.Tag[1] = 0 // response
	r.SetRow(2, OpRead, 2, 0, 0, 0, nil)
	r.Tag[2] = 1
	r.SetRow(3, OpRead, 2, 0, 0, 0, nil)
	r.Tag[3] = 0

	obliv.Sort(ByKeyTag{r})
	wantKey := []uint64{2, 2, 5, 5}
	wantTag := []uint8{0, 1, 0, 1}
	for i := range wantKey {
		if r.Key[i] != wantKey[i] || r.Tag[i] != wantTag[i] {
			t.Fatalf("slot %d: key=%d tag=%d", i, r.Key[i], r.Tag[i])
		}
	}
}
