// Package store defines the fixed-layout request/response records that flow
// between Snoopy's load balancers and subORAMs, implemented as a columnar
// record set supporting the oblivious operations (conditional row swap/copy,
// sort orderings) that the batching algorithms of §4–§5 are built from.
//
// Every record carries the same fixed-size value block, so record size — and
// therefore the memory traffic of every oblivious pass — is a public
// constant.
package store

import (
	"fmt"

	"snoopy/internal/obliv"
	"snoopy/internal/trace"
)

// Operation codes. OpRead must be the zero value: zeroed records are dummy
// reads.
const (
	OpRead  uint8 = 0
	OpWrite uint8 = 1
)

// DummyKeyBit marks dummy identifiers. Real object identifiers must stay
// below it; the load balancer and hash table mint dummy keys above it, which
// guarantees (a) dummies never match a stored object and (b) sorting by key
// pushes dummies after all real requests.
const DummyKeyBit = uint64(1) << 63

// IsDummyKey reports (branch-free callers should use the mask directly)
// whether key is in the dummy space.
func IsDummyKey(key uint64) bool { return key&DummyKeyBit != 0 }

// DummyMark returns 1 if key is a dummy key, else 0, branch-free.
func DummyMark(key uint64) uint8 { return uint8(key >> 63) }

// Requests is a columnar set of n request/response records with a fixed
// value block size. Columns:
//
//	Op     — OpRead or OpWrite
//	Key    — object identifier (or dummy key)
//	Sub    — scratch routing tag: subORAM index at the load balancer,
//	         hash-table bucket at the subORAM
//	Tag    — scratch 0/1 mark bit for compaction passes
//	Aux    — second scratch 0/1 mark bit (e.g. the subORAM found bit)
//	Seq    — arrival sequence number (last-write-wins tiebreak)
//	Client — opaque routing cookie, carried alongside but never inspected
//	         by oblivious passes
//	Data   — n fixed-size value blocks, flattened
type Requests struct {
	BlockSize int
	// Rec, when non-nil, records the access trace of every oblivious
	// operation for the obliviousness tests (see internal/trace). Tracing
	// is a single-threaded test facility.
	Rec    *trace.Recorder
	Op     []uint8
	Key    []uint64
	Sub    []uint32
	Tag    []uint8
	Aux    []uint8
	Seq    []uint64
	Client []uint64
	Data   []byte
}

// NewRequests allocates n zeroed records (dummy reads of key 0) with the
// given value block size.
func NewRequests(n, blockSize int) *Requests {
	if n < 0 || blockSize <= 0 {
		panic(fmt.Sprintf("store: invalid Requests dims n=%d block=%d", n, blockSize))
	}
	return &Requests{
		BlockSize: blockSize,
		Op:        make([]uint8, n),
		Key:       make([]uint64, n),
		Sub:       make([]uint32, n),
		Tag:       make([]uint8, n),
		Aux:       make([]uint8, n),
		Seq:       make([]uint64, n),
		Client:    make([]uint64, n),
		Data:      make([]byte, n*blockSize),
	}
}

// Len returns the number of records.
func (r *Requests) Len() int { return len(r.Key) }

// Cap returns the record capacity of the backing arrays: the largest n that
// Resize accepts. For a set built by NewRequests it equals Len.
func (r *Requests) Cap() int {
	c := cap(r.Key)
	if k := cap(r.Op); k < c {
		c = k
	}
	if k := cap(r.Sub); k < c {
		c = k
	}
	if k := cap(r.Tag); k < c {
		c = k
	}
	if k := cap(r.Aux); k < c {
		c = k
	}
	if k := cap(r.Seq); k < c {
		c = k
	}
	if k := cap(r.Client); k < c {
		c = k
	}
	if k := cap(r.Data) / r.BlockSize; k < c {
		c = k
	}
	return c
}

// Resize reslices r to n records without copying or zeroing; records beyond
// the previous length expose stale contents (callers that need zeroed
// records follow with Reset). n must not exceed Cap. Views taken before a
// Resize keep aliasing the backing arrays.
func (r *Requests) Resize(n int) {
	if n < 0 || n > r.Cap() {
		panic(fmt.Sprintf("store: Resize(%d) outside capacity %d", n, r.Cap()))
	}
	r.Op = r.Op[:n]
	r.Key = r.Key[:n]
	r.Sub = r.Sub[:n]
	r.Tag = r.Tag[:n]
	r.Aux = r.Aux[:n]
	r.Seq = r.Seq[:n]
	r.Client = r.Client[:n]
	r.Data = r.Data[:n*r.BlockSize]
}

// Reset zeroes every record in place (length unchanged): all records become
// dummy reads of key 0, the same state NewRequests establishes.
func (r *Requests) Reset() {
	clear(r.Op)
	clear(r.Key)
	clear(r.Sub)
	clear(r.Tag)
	clear(r.Aux)
	clear(r.Seq)
	clear(r.Client)
	clear(r.Data)
}

// CopyRowsPlain plainly copies all records of src into r starting at record
// off. r must have room (off + src.Len() <= r.Len()) and share src's block
// size. It is the bulk, allocation-free counterpart of Concat.
func (r *Requests) CopyRowsPlain(off int, src *Requests) {
	if r.BlockSize != src.BlockSize {
		panic("store: CopyRowsPlain block size mismatch")
	}
	if off < 0 || off+src.Len() > r.Len() {
		panic(fmt.Sprintf("store: CopyRowsPlain [%d,%d) outside %d records",
			off, off+src.Len(), r.Len()))
	}
	copy(r.Op[off:], src.Op)
	copy(r.Key[off:], src.Key)
	copy(r.Sub[off:], src.Sub)
	copy(r.Tag[off:], src.Tag)
	copy(r.Aux[off:], src.Aux)
	copy(r.Seq[off:], src.Seq)
	copy(r.Client[off:], src.Client)
	copy(r.Data[off*r.BlockSize:], src.Data)
}

// CopyPrefix plainly copies the first r.Len() records of src into r (src
// must be at least as long as r and share its block size): the copy step
// that replaces View(0, n).Clone() when r is reused storage.
func (r *Requests) CopyPrefix(src *Requests) {
	if r.BlockSize != src.BlockSize {
		panic("store: CopyPrefix block size mismatch")
	}
	if src.Len() < r.Len() {
		panic(fmt.Sprintf("store: CopyPrefix source %d shorter than %d", src.Len(), r.Len()))
	}
	n := r.Len()
	copy(r.Op, src.Op[:n])
	copy(r.Key, src.Key[:n])
	copy(r.Sub, src.Sub[:n])
	copy(r.Tag, src.Tag[:n])
	copy(r.Aux, src.Aux[:n])
	copy(r.Seq, src.Seq[:n])
	copy(r.Client, src.Client[:n])
	copy(r.Data, src.Data[:n*r.BlockSize])
}

// Block returns the value block of record i (aliasing the backing array).
func (r *Requests) Block(i int) []byte {
	return r.Data[i*r.BlockSize : (i+1)*r.BlockSize]
}

// OSwap obliviously exchanges records i and j iff c == 1.
func (r *Requests) OSwap(c uint8, i, j int) {
	r.Rec.Record(trace.KindSwap, i, j)
	obliv.CondSwapU8(c, &r.Op[i], &r.Op[j])
	obliv.CondSwapU64(c, &r.Key[i], &r.Key[j])
	obliv.CondSwapU32(c, &r.Sub[i], &r.Sub[j])
	obliv.CondSwapU8(c, &r.Tag[i], &r.Tag[j])
	obliv.CondSwapU8(c, &r.Aux[i], &r.Aux[j])
	obliv.CondSwapU64(c, &r.Seq[i], &r.Seq[j])
	obliv.CondSwapU64(c, &r.Client[i], &r.Client[j])
	obliv.CondSwapBytes(c, r.Block(i), r.Block(j))
}

// OCopyRow obliviously sets record dst = record src iff c == 1.
func (r *Requests) OCopyRow(c uint8, dst, src int) {
	r.Rec.Record(trace.KindCopyRow, dst, src)
	obliv.CondSetU8(c, &r.Op[dst], r.Op[src])
	obliv.CondSetU64(c, &r.Key[dst], r.Key[src])
	obliv.CondSetU32(c, &r.Sub[dst], r.Sub[src])
	obliv.CondSetU8(c, &r.Tag[dst], r.Tag[src])
	obliv.CondSetU8(c, &r.Aux[dst], r.Aux[src])
	obliv.CondSetU64(c, &r.Seq[dst], r.Seq[src])
	obliv.CondSetU64(c, &r.Client[dst], r.Client[src])
	obliv.CondCopyBytes(c, r.Block(dst), r.Block(src))
}

// OCopyRowFrom obliviously sets record dst of r = record src of o iff c == 1.
// Both sets must share a block size.
func (r *Requests) OCopyRowFrom(c uint8, dst int, o *Requests, src int) {
	if r.BlockSize != o.BlockSize {
		panic("store: OCopyRowFrom block size mismatch")
	}
	r.Rec.Record(trace.KindCopyRow, dst, src)
	obliv.CondSetU8(c, &r.Op[dst], o.Op[src])
	obliv.CondSetU64(c, &r.Key[dst], o.Key[src])
	obliv.CondSetU32(c, &r.Sub[dst], o.Sub[src])
	obliv.CondSetU8(c, &r.Tag[dst], o.Tag[src])
	obliv.CondSetU8(c, &r.Aux[dst], o.Aux[src])
	obliv.CondSetU64(c, &r.Seq[dst], o.Seq[src])
	obliv.CondSetU64(c, &r.Client[dst], o.Client[src])
	obliv.CondCopyBytes(c, r.Block(dst), o.Block(src))
}

// SetRow plainly (non-obliviously) writes record i; used only on data whose
// position is already public, e.g. ingesting client requests or appending
// dummies.
func (r *Requests) SetRow(i int, op uint8, key uint64, sub uint32, seq, client uint64, data []byte) {
	r.Op[i] = op
	r.Key[i] = key
	r.Sub[i] = sub
	r.Tag[i] = 0
	r.Aux[i] = 0
	r.Seq[i] = seq
	r.Client[i] = client
	b := r.Block(i)
	for k := range b {
		b[k] = 0
	}
	copy(b, data)
}

// CopyRowPlain plainly copies record src of o into record dst of r.
func (r *Requests) CopyRowPlain(dst int, o *Requests, src int) {
	r.Op[dst] = o.Op[src]
	r.Key[dst] = o.Key[src]
	r.Sub[dst] = o.Sub[src]
	r.Tag[dst] = o.Tag[src]
	r.Aux[dst] = o.Aux[src]
	r.Seq[dst] = o.Seq[src]
	r.Client[dst] = o.Client[src]
	copy(r.Block(dst), o.Block(src))
}

// Touch records a full oblivious read/write pass over record i (used by
// scan loops that operate on blocks directly).
func (r *Requests) Touch(i int) { r.Rec.Record(trace.KindTouch, i, 0) }

// View returns a window [lo, hi) of r sharing the same backing arrays.
// The trace recorder is NOT shared: recorded positions would be ambiguous
// across windows; scans over views record via the parent.
func (r *Requests) View(lo, hi int) *Requests {
	return &Requests{
		BlockSize: r.BlockSize,
		Op:        r.Op[lo:hi],
		Key:       r.Key[lo:hi],
		Sub:       r.Sub[lo:hi],
		Tag:       r.Tag[lo:hi],
		Aux:       r.Aux[lo:hi],
		Seq:       r.Seq[lo:hi],
		Client:    r.Client[lo:hi],
		Data:      r.Data[lo*r.BlockSize : hi*r.BlockSize],
	}
}

// ViewInto fills dst with the window [lo, hi) of r sharing the same backing
// arrays — View without the allocation, for callers that keep the window
// struct in preallocated scratch (the load-balancer tree's per-leaf run
// segments). Like View, the trace recorder is not shared.
func (r *Requests) ViewInto(dst *Requests, lo, hi int) {
	*dst = Requests{
		BlockSize: r.BlockSize,
		Op:        r.Op[lo:hi],
		Key:       r.Key[lo:hi],
		Sub:       r.Sub[lo:hi],
		Tag:       r.Tag[lo:hi],
		Aux:       r.Aux[lo:hi],
		Seq:       r.Seq[lo:hi],
		Client:    r.Client[lo:hi],
		Data:      r.Data[lo*r.BlockSize : hi*r.BlockSize],
	}
}

// Clone returns a deep copy of r.
func (r *Requests) Clone() *Requests {
	c := NewRequests(r.Len(), r.BlockSize)
	c.Rec = r.Rec
	copy(c.Op, r.Op)
	copy(c.Key, r.Key)
	copy(c.Sub, r.Sub)
	copy(c.Tag, r.Tag)
	copy(c.Aux, r.Aux)
	copy(c.Seq, r.Seq)
	copy(c.Client, r.Client)
	copy(c.Data, r.Data)
	return c
}

// Concat returns a fresh record set holding all records of a then b.
func Concat(a, b *Requests) *Requests {
	if a.BlockSize != b.BlockSize {
		panic("store: Concat block size mismatch")
	}
	out := NewRequests(a.Len()+b.Len(), a.BlockSize)
	for i := 0; i < a.Len(); i++ {
		out.CopyRowPlain(i, a, i)
	}
	for i := 0; i < b.Len(); i++ {
		out.CopyRowPlain(a.Len()+i, b, i)
	}
	return out
}

// BySubKeyWriteSeq orders records for load-balancer batch construction
// (paper Fig. 5 step ➌): by subORAM, then key — dummy keys carry the top
// bit, so dummies sink to the end of each subORAM group while duplicates
// become adjacent — then writes before reads, then descending sequence.
// After this sort, the first record of every duplicate run is the
// last-write-wins representative.
type BySubKeyWriteSeq struct{ *Requests }

// Greater implements obliv.Sorter.
func (s BySubKeyWriteSeq) Greater(i, j int) uint8 {
	r := s.Requests
	subGt := obliv.GtU64(uint64(r.Sub[i]), uint64(r.Sub[j]))
	subEq := obliv.EqU64(uint64(r.Sub[i]), uint64(r.Sub[j]))
	keyGt := obliv.GtU64(r.Key[i], r.Key[j])
	keyEq := obliv.EqU64(r.Key[i], r.Key[j])
	// Within a duplicate run: writes (Op=1) first → i after j if Op_i < Op_j.
	opLt := obliv.LtU64(uint64(r.Op[i]), uint64(r.Op[j]))
	opEq := obliv.EqU64(uint64(r.Op[i]), uint64(r.Op[j]))
	seqLt := obliv.LtU64(r.Seq[i], r.Seq[j])
	inner := obliv.Or(opLt, obliv.And(opEq, seqLt))
	return obliv.Or(subGt,
		obliv.And(subEq, obliv.Or(keyGt, obliv.And(keyEq, inner))))
}

// ByKeyTag orders records for response matching (paper Fig. 6 step ➋): by
// key, then tag bit — responses (Tag=0) before the client requests (Tag=1)
// they answer.
type ByKeyTag struct{ *Requests }

// Greater implements obliv.Sorter.
func (s ByKeyTag) Greater(i, j int) uint8 {
	r := s.Requests
	keyGt := obliv.GtU64(r.Key[i], r.Key[j])
	keyEq := obliv.EqU64(r.Key[i], r.Key[j])
	tagGt := obliv.GtU64(uint64(r.Tag[i]), uint64(r.Tag[j]))
	return obliv.Or(keyGt, obliv.And(keyEq, tagGt))
}

// BySubKey orders records by (Sub, Key); used by hash-table construction
// where Sub holds the bucket index and dummy keys must sink within buckets.
type BySubKey struct{ *Requests }

// Greater implements obliv.Sorter.
func (s BySubKey) Greater(i, j int) uint8 {
	r := s.Requests
	subGt := obliv.GtU64(uint64(r.Sub[i]), uint64(r.Sub[j]))
	subEq := obliv.EqU64(uint64(r.Sub[i]), uint64(r.Sub[j]))
	keyGt := obliv.GtU64(r.Key[i], r.Key[j])
	return obliv.Or(subGt, obliv.And(subEq, keyGt))
}
