// Package faultnet wraps net.Conn and net.Listener with scripted faults —
// stalls, mid-frame closes, byte corruption, added latency — so the
// transport and core fault-tolerance paths can be driven deterministically
// in tests. A fault plan is expressed against absolute stream offsets
// (bytes read or written so far on that direction), and plans can be
// swapped at runtime, so a test can let the attested handshake and a first
// RPC through cleanly and then inject a fault at a known point.
//
// The package is test infrastructure but lives outside _test files so the
// transport, core, and cmd integration tests can all share it.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"time"
)

// Never disables a byte-offset trigger in a Plan.
const Never = int64(-1)

// ErrInjectedClose is returned by reads/writes after a CloseAfter trigger
// fired (the connection is really closed underneath too).
var ErrInjectedClose = errors.New("faultnet: connection closed by fault script")

// ErrInjectedStall is returned when a stalled operation is released by
// closing the connection.
var ErrInjectedStall = errors.New("faultnet: stalled operation aborted by close")

// Plan scripts the faults for one direction (read or write) of a
// connection. Offsets are absolute: the number of bytes that direction has
// already carried. The zero value triggers everything at offset 0; use
// NoFaults as the base and override fields.
type Plan struct {
	// Latency is added before every operation on the direction.
	Latency time.Duration
	// StallAfter blocks the direction forever once its offset reaches the
	// given value (a peer that is alive at TCP level but wedged). Blocked
	// operations return only when the connection is closed. Never disables.
	StallAfter int64
	// CloseAfter closes the whole connection once the direction's offset
	// reaches the given value, truncating mid-frame. Never disables.
	CloseAfter int64
	// CorruptAt flips a bit in the byte at the given offset (AEAD layers
	// must reject the frame). Never disables.
	CorruptAt int64
}

// NoFaults returns a plan with every trigger disabled.
func NoFaults() Plan {
	return Plan{StallAfter: Never, CloseAfter: Never, CorruptAt: Never}
}

// Conn wraps a net.Conn with independently scripted read and write fault
// plans. All methods are safe for concurrent use to the same degree as the
// underlying connection.
type Conn struct {
	net.Conn

	closeOnce sync.Once
	closed    chan struct{}

	rd stream
	wr stream
}

type stream struct {
	mu   sync.Mutex
	plan Plan
	off  int64
}

// Wrap wraps c with the given read- and write-direction plans.
func Wrap(c net.Conn, read, write Plan) *Conn {
	fc := &Conn{Conn: c, closed: make(chan struct{})}
	fc.rd.plan = read
	fc.wr.plan = write
	return fc
}

// SetReadPlan replaces the read-direction plan at runtime.
func (c *Conn) SetReadPlan(p Plan) {
	c.rd.mu.Lock()
	c.rd.plan = p
	c.rd.mu.Unlock()
}

// SetWritePlan replaces the write-direction plan at runtime.
func (c *Conn) SetWritePlan(p Plan) {
	c.wr.mu.Lock()
	c.wr.plan = p
	c.wr.mu.Unlock()
}

// ReadOffset returns the bytes delivered to readers so far. Combined with
// SetReadPlan it pins a fault to "the next byte from now".
func (c *Conn) ReadOffset() int64 {
	c.rd.mu.Lock()
	defer c.rd.mu.Unlock()
	return c.rd.off
}

// WriteOffset returns the bytes written so far.
func (c *Conn) WriteOffset() int64 {
	c.wr.mu.Lock()
	defer c.wr.mu.Unlock()
	return c.wr.off
}

// Close closes the underlying connection and releases any stalled
// operations.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// stall blocks until the connection closes.
func (c *Conn) stall() error {
	<-c.closed
	return ErrInjectedStall
}

// gate applies the plan triggers before moving up to n bytes on the
// stream; it returns how many bytes may move (possibly fewer, so an exact
// offset trigger lands on a chunk boundary) or an error.
func (c *Conn) gate(s *stream, n int) (allowed int, corrupt int64, err error) {
	s.mu.Lock()
	plan := s.plan
	off := s.off
	s.mu.Unlock()

	if plan.Latency > 0 {
		select {
		case <-time.After(plan.Latency):
		case <-c.closed:
			return 0, Never, ErrInjectedStall
		}
	}
	if plan.StallAfter != Never && off >= plan.StallAfter {
		return 0, Never, c.stall()
	}
	if plan.CloseAfter != Never && off >= plan.CloseAfter {
		c.Close()
		return 0, Never, ErrInjectedClose
	}
	allowed = n
	if plan.StallAfter != Never && off+int64(allowed) > plan.StallAfter {
		allowed = int(plan.StallAfter - off)
	}
	if plan.CloseAfter != Never && off+int64(allowed) > plan.CloseAfter {
		allowed = int(plan.CloseAfter - off)
	}
	corrupt = Never
	if plan.CorruptAt != Never && plan.CorruptAt >= off && plan.CorruptAt < off+int64(allowed) {
		corrupt = plan.CorruptAt - off // index within this chunk
	}
	return allowed, corrupt, nil
}

func (s *stream) advance(n int) {
	s.mu.Lock()
	s.off += int64(n)
	s.mu.Unlock()
}

// Read applies the read plan, then reads from the underlying connection.
func (c *Conn) Read(p []byte) (int, error) {
	allowed, corrupt, err := c.gate(&c.rd, len(p))
	if err != nil {
		return 0, err
	}
	if allowed == 0 && len(p) > 0 {
		// The trigger sits exactly at the current offset; re-gate to fire it.
		return c.Read(p)
	}
	n, err := c.Conn.Read(p[:allowed])
	if corrupt != Never && corrupt < int64(n) {
		p[corrupt] ^= 0x40
	}
	c.rd.advance(n)
	return n, err
}

// Write applies the write plan, then writes to the underlying connection.
// Partial chunks are written through so a CloseAfter mid-buffer truncates
// exactly at its offset.
func (c *Conn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		allowed, corrupt, err := c.gate(&c.wr, len(p)-written)
		if err != nil {
			return written, err
		}
		if allowed == 0 {
			continue // trigger at current offset fires on re-gate
		}
		chunk := p[written : written+allowed]
		if corrupt != Never {
			chunk = append([]byte(nil), chunk...)
			chunk[corrupt] ^= 0x40
		}
		n, err := c.Conn.Write(chunk)
		c.wr.advance(n)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Listener wraps a net.Listener: every accepted connection is wrapped with
// the plans the planner function yields for it, and tracked so a test can
// sever all live connections at once (a machine crash, as opposed to a
// graceful shutdown).
type Listener struct {
	net.Listener

	// PlanFor, when non-nil, yields the (read, write) plans for the i-th
	// accepted connection (0-based). Nil means NoFaults for every conn.
	PlanFor func(i int) (read, write Plan)

	mu       sync.Mutex
	accepted int
	conns    []*Conn
}

// WrapListener wraps l. planFor may be nil (no faults).
func WrapListener(l net.Listener, planFor func(i int) (read, write Plan)) *Listener {
	return &Listener{Listener: l, PlanFor: planFor}
}

// Accept wraps the next connection with its scripted plans.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	read, write := NoFaults(), NoFaults()
	l.mu.Lock()
	i := l.accepted
	l.accepted++
	l.mu.Unlock()
	if l.PlanFor != nil {
		read, write = l.PlanFor(i)
	}
	fc := Wrap(c, read, write)
	l.mu.Lock()
	l.conns = append(l.conns, fc)
	l.mu.Unlock()
	return fc, nil
}

// Conns returns the connections accepted so far.
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Conn(nil), l.conns...)
}

// CloseConns severs every accepted connection (crash of the machine's
// sockets) without closing the listener.
func (l *Listener) CloseConns() {
	for _, c := range l.Conns() {
		c.Close()
	}
}

// Kill simulates a process kill: the listener stops accepting and every
// live connection is severed.
func (l *Listener) Kill() {
	l.Listener.Close()
	l.CloseConns()
}
