package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a connected TCP pair (real sockets, so deadlines work).
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestNoFaultsPassThrough(t *testing.T) {
	c, s := pipePair(t)
	fc := Wrap(c, NoFaults(), NoFaults())
	msg := []byte("hello, faultnet")
	go fc.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if fc.WriteOffset() != int64(len(msg)) {
		t.Fatalf("write offset %d", fc.WriteOffset())
	}
}

func TestCorruptAtFlipsExactlyOneByte(t *testing.T) {
	c, s := pipePair(t)
	plan := NoFaults()
	plan.CorruptAt = 3
	fc := Wrap(c, NoFaults(), plan)
	msg := []byte("0123456789")
	go fc.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range msg {
		if got[i] != msg[i] {
			diff++
			if i != 3 {
				t.Fatalf("byte %d corrupted, want only 3", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes corrupted, want 1", diff)
	}
	// The caller's buffer must not be mutated.
	if !bytes.Equal(msg, []byte("0123456789")) {
		t.Fatal("write corrupted the caller's buffer")
	}
}

func TestCloseAfterTruncatesMidStream(t *testing.T) {
	c, s := pipePair(t)
	plan := NoFaults()
	plan.CloseAfter = 5
	fc := Wrap(c, NoFaults(), plan)
	n, err := fc.Write([]byte("0123456789"))
	if n != 5 || err == nil {
		t.Fatalf("write: n=%d err=%v, want 5 bytes then error", n, err)
	}
	got, _ := io.ReadAll(s)
	if string(got) != "01234" {
		t.Fatalf("peer received %q", got)
	}
	// Subsequent writes stay failed.
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write after injected close succeeded")
	}
}

func TestStallAfterBlocksUntilClose(t *testing.T) {
	c, s := pipePair(t)
	plan := NoFaults()
	plan.StallAfter = 0
	fc := Wrap(c, plan, NoFaults())
	go s.Write([]byte("data the reader must never see"))

	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := fc.Read(buf)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("stalled read returned nil after close")
		}
	case <-time.After(time.Second):
		t.Fatal("stalled read not released by Close")
	}
}

func TestRuntimePlanSwap(t *testing.T) {
	c, s := pipePair(t)
	fc := Wrap(c, NoFaults(), NoFaults())
	go s.Write([]byte("first"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatal(err)
	}
	// Stall everything from the current offset on.
	plan := NoFaults()
	plan.StallAfter = fc.ReadOffset()
	fc.SetReadPlan(plan)
	go s.Write([]byte("second"))
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Read(buf)
		errCh <- err
	}()
	select {
	case <-errCh:
		t.Fatal("read after swapped-in stall returned")
	case <-time.After(50 * time.Millisecond):
	}
	fc.Close()
	<-errCh
}

func TestLatencyDelaysOps(t *testing.T) {
	c, s := pipePair(t)
	plan := NoFaults()
	plan.Latency = 30 * time.Millisecond
	fc := Wrap(c, plan, NoFaults())
	go s.Write([]byte("x"))
	t0 := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("read returned in %v, want >= ~30ms", d)
	}
}

func TestListenerKill(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := WrapListener(inner, nil)
	defer l.Close()

	// Echo server over the wrapped listener.
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()
	c, err := net.Dial("tcp", inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	l.Kill()
	// The live connection is severed: reads drain and then fail.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, buf); err == nil {
		t.Fatal("connection survived Kill")
	}
	// And the listener no longer accepts.
	if _, err := net.DialTimeout("tcp", inner.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener survived Kill")
	}
}
