package ohash

import (
	"math/rand"
	"testing"

	"snoopy/internal/arena"
)

// TestBuilderBuildZeroAllocSteadyState is the tentpole guard for the hash
// table: once the Builder's scratch, tiers, and the arena are warm, a
// steady-state Build performs zero heap allocations.
func TestBuilderBuildZeroAllocSteadyState(t *testing.T) {
	pool := arena.NewPool()
	p := DefaultParams()
	p.Pool = pool
	b := NewBuilder(p)

	rng := rand.New(rand.NewSource(51))
	reqs := makeBatch(rng, 512, 32)

	if _, err := b.Build(reqs); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(50, func() {
		if _, err := b.Build(reqs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Builder.Build allocated %.1f times per run, want 0", allocs)
	}
}

// TestBuildExtractCycleZeroAllocSteadyState extends the guard through
// Extract — the full per-batch subORAM table lifecycle.
func TestBuildExtractCycleZeroAllocSteadyState(t *testing.T) {
	pool := arena.NewPool()
	p := DefaultParams()
	p.Pool = pool
	b := NewBuilder(p)

	rng := rand.New(rand.NewSource(52))
	reqs := makeBatch(rng, 256, 16)

	tbl, err := b.Build(reqs)
	if err != nil {
		t.Fatal(err)
	}
	pool.PutRequests(tbl.Extract())

	allocs := testing.AllocsPerRun(50, func() {
		tbl, err := b.Build(reqs)
		if err != nil {
			t.Fatal(err)
		}
		pool.PutRequests(tbl.Extract())
	})
	if allocs != 0 {
		t.Fatalf("warm Build+Extract allocated %.1f times per run, want 0", allocs)
	}
}
