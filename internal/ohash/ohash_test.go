package ohash

import (
	"math/rand"
	"testing"
	"time"

	"snoopy/internal/store"
)

func makeBatch(rng *rand.Rand, n, block int) *store.Requests {
	reqs := store.NewRequests(n, block)
	perm := rng.Perm(n * 10)
	for i := 0; i < n; i++ {
		op := store.OpRead
		if rng.Intn(2) == 0 {
			op = store.OpWrite
		}
		reqs.SetRow(i, op, uint64(perm[i]), 0, uint64(i), uint64(i), []byte{byte(i)})
	}
	return reqs
}

// findKey scans the buckets for key and returns how many occupied slots
// match, plus the location of the first match.
func findKey(t *Table, key uint64) (count int, tier, slot int) {
	lo1, hi1, lo2, hi2 := t.Buckets(key)
	for s := lo1; s < hi1; s++ {
		if t.Tier1.Tag[s] == 1 && t.Tier1.Key[s] == key {
			count++
			tier, slot = 1, s
		}
	}
	for s := lo2; s < hi2; s++ {
		if t.Tier2.Tag[s] == 1 && t.Tier2.Key[s] == key {
			count++
			tier, slot = 2, s
		}
	}
	return
}

func TestBuildAndLookupAllKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 5, 64, 512, 1500} {
		reqs := makeBatch(rng, n, 16)
		tbl, err := Build(reqs, DefaultParams())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			c, _, _ := findKey(tbl, reqs.Key[i])
			if c != 1 {
				t.Fatalf("n=%d: key %d found %d times, want 1", n, reqs.Key[i], c)
			}
		}
	}
}

func TestBuildPreservesRecordFields(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	reqs := makeBatch(rng, 200, 16)
	tbl, err := Build(reqs, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reqs.Len(); i++ {
		_, tier, slot := findKey(tbl, reqs.Key[i])
		var tr *store.Requests
		if tier == 1 {
			tr = tbl.Tier1
		} else {
			tr = tbl.Tier2
		}
		if tr.Op[slot] != reqs.Op[i] || tr.Seq[slot] != reqs.Seq[i] ||
			tr.Client[slot] != reqs.Client[i] || tr.Block(slot)[0] != reqs.Block(i)[0] {
			t.Fatalf("record %d fields mangled in table", i)
		}
	}
}

func TestBuildManySeedsNoOverflow(t *testing.T) {
	// The negligible-overflow claim, empirically: many batches at the
	// default geometry must all place.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		n := 100 + rng.Intn(2000)
		reqs := makeBatch(rng, n, 8)
		if _, err := Build(reqs, DefaultParams()); err != nil {
			t.Fatalf("trial %d n=%d: %v", trial, n, err)
		}
	}
}

func TestBuildWithLoadBalancerDummies(t *testing.T) {
	// LB dummy keys (DummyKeyBit set, TableDummyBit clear) must be placed
	// and findable like real keys.
	reqs := store.NewRequests(100, 8)
	for i := 0; i < 50; i++ {
		reqs.SetRow(i, store.OpRead, uint64(i), 0, 0, 0, nil)
	}
	for i := 50; i < 100; i++ {
		reqs.SetRow(i, store.OpRead, store.DummyKeyBit|uint64(i), 0, 0, 0, nil)
	}
	tbl, err := Build(reqs, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if c, _, _ := findKey(tbl, reqs.Key[i]); c != 1 {
			t.Fatalf("key %x found %d times", reqs.Key[i], c)
		}
	}
}

func TestExtractRecoversBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	reqs := makeBatch(rng, 300, 16)
	tbl, err := Build(reqs, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Extract()
	if out.Len() != reqs.Len() {
		t.Fatalf("Extract returned %d rows, want %d", out.Len(), reqs.Len())
	}
	want := map[uint64]uint64{}
	for i := 0; i < reqs.Len(); i++ {
		want[reqs.Key[i]] = reqs.Seq[i]
	}
	for i := 0; i < out.Len(); i++ {
		seq, ok := want[out.Key[i]]
		if !ok || seq != out.Seq[i] {
			t.Fatalf("extracted row %d (key %d) unknown or mangled", i, out.Key[i])
		}
		delete(want, out.Key[i])
	}
	if len(want) != 0 {
		t.Fatalf("%d batch rows missing from extraction", len(want))
	}
}

func TestGeometry(t *testing.T) {
	p := DefaultParams()
	g := p.GeometryFor(4096)
	if g.B1 != 1024 || g.Z1 != 8 {
		t.Fatalf("tier-1 geometry: %+v", g)
	}
	if g.C2 != 512 || g.B2 != 512 {
		t.Fatalf("tier-2 geometry: %+v", g)
	}
	if g.Z2 < 20 || g.Z2 > 60 {
		t.Fatalf("tier-2 bucket size out of expected range: %d", g.Z2)
	}
	// The paper's two-tier claim: tier-1 buckets are ~10× smaller than a
	// single-tier table sized for negligible overflow at the same λ.
	singleTier := singleTierBucket(4096, p.Lambda)
	if singleTier < 5*g.Z1 {
		t.Fatalf("two-tier advantage missing: single-tier bucket %d vs Z1 %d", singleTier, g.Z1)
	}
	if g.SlotsScannedPerLookup() != g.Z1+g.Z2 {
		t.Fatal("SlotsScannedPerLookup inconsistent")
	}
}

func TestBuildEmptyBatchErrors(t *testing.T) {
	if _, err := Build(store.NewRequests(0, 8), DefaultParams()); err == nil {
		t.Fatal("empty batch should error")
	}
}

func TestBucketsInRange(t *testing.T) {
	reqs := makeBatch(rand.New(rand.NewSource(24)), 128, 8)
	tbl, err := Build(reqs, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 1000; id++ {
		lo1, hi1, lo2, hi2 := tbl.Buckets(id)
		if lo1 < 0 || hi1 > tbl.Tier1.Len() || hi1-lo1 != tbl.Geom.Z1 {
			t.Fatalf("tier-1 bucket range bad: [%d,%d)", lo1, hi1)
		}
		if lo2 < 0 || hi2 > tbl.Tier2.Len() || hi2-lo2 != tbl.Geom.Z2 {
			t.Fatalf("tier-2 bucket range bad: [%d,%d)", lo2, hi2)
		}
	}
}

func TestSingleTierQuadraticCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, n := range []int{1, 10, 200} {
		reqs := makeBatch(rng, n, 8)
		tbl, err := BuildSingleTierQuadratic(reqs, 64)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			lo, hi := tbl.Bucket(reqs.Key[i])
			count := 0
			for s := lo; s < hi; s++ {
				if tbl.Rows.Tag[s] == 1 && tbl.Rows.Key[s] == reqs.Key[i] {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("n=%d: key %d found %d times", n, reqs.Key[i], count)
			}
		}
	}
}

// TestTwoTierConstructionBeatsQuadratic reproduces the §5 claim that the
// two-tier construction is concretely faster at realistic batch sizes.
func TestTwoTierConstructionBeatsQuadratic(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	rng := rand.New(rand.NewSource(26))
	const n = 1024
	reqs := makeBatch(rng, n, 32)

	start := time.Now()
	if _, err := Build(reqs, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	twoTier := time.Since(start)

	start = time.Now()
	if _, err := BuildSingleTierQuadratic(reqs, 128); err != nil {
		t.Fatal(err)
	}
	quadratic := time.Since(start)

	if quadratic < twoTier {
		t.Fatalf("quadratic construction (%v) beat two-tier (%v) at n=%d — ablation claim broken",
			quadratic, twoTier, n)
	}
	t.Logf("n=%d: two-tier %v vs quadratic %v (%.1fx)", n, twoTier, quadratic,
		float64(quadratic)/float64(twoTier))
}

// TestBuilderMatchesBuild: the buffer-reusing Builder must produce tables
// equivalent to the allocating path, across repeated batches of varying
// sizes (exercising scratch reuse and resizing).
func TestBuilderMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	b := NewBuilder(DefaultParams())
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(800)
		reqs := makeBatch(rng, n, 16)
		tbl, err := b.Build(reqs)
		if err != nil {
			t.Fatalf("trial %d n=%d: %v", trial, n, err)
		}
		for i := 0; i < n; i++ {
			c, tier, slot := findKey(tbl, reqs.Key[i])
			if c != 1 {
				t.Fatalf("trial %d n=%d: key %d found %d times", trial, n, reqs.Key[i], c)
			}
			tr := tbl.Tier1
			if tier == 2 {
				tr = tbl.Tier2
			}
			if tr.Seq[slot] != reqs.Seq[i] {
				t.Fatalf("trial %d: record fields mangled", trial)
			}
		}
		// The extracted batch must round-trip too.
		out := tbl.Extract()
		if out.Len() != n {
			t.Fatalf("trial %d: extract %d != %d", trial, out.Len(), n)
		}
	}
}

// TestBuilderExtractSurvivesRebuild: a Builder's table storage is reused by
// the next Build (that is the zero-allocation contract), but the Extract
// result is independently pooled — it must stay intact across later Builds.
func TestBuilderExtractSurvivesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	b := NewBuilder(DefaultParams())
	reqs1 := makeBatch(rng, 100, 8)
	t1, err := b.Build(reqs1)
	if err != nil {
		t.Fatal(err)
	}
	out := t1.Extract()
	snapshot := append([]uint64(nil), out.Key...)
	reqs2 := makeBatch(rng, 100, 8)
	if _, err := b.Build(reqs2); err != nil {
		t.Fatal(err)
	}
	for i, k := range snapshot {
		if out.Key[i] != k {
			t.Fatal("second Build mutated the first extracted batch")
		}
	}
	// The extracted rows are exactly the original batch keys.
	want := make(map[uint64]bool, reqs1.Len())
	for i := 0; i < reqs1.Len(); i++ {
		want[reqs1.Key[i]] = true
	}
	for i := 0; i < out.Len(); i++ {
		if !want[out.Key[i]] {
			t.Fatalf("extracted key %d not in original batch", out.Key[i])
		}
	}
}
