package ohash

import "snoopy/internal/batch"

// singleTierBucket returns the bucket size a *single*-tier oblivious hash
// table would need for n elements at mean load 2 with overflow probability
// negligible in lambda — the comparison point for the paper's claim that
// two-tier buckets are ~10× smaller (§5). Exported to benchmarks via
// SingleTierBucketSize.
func singleTierBucket(n, lambda int) int {
	buckets := (n + 1) / 2
	if buckets < 1 {
		buckets = 1
	}
	return batch.Size(n, buckets, lambda)
}

// SingleTierBucketSize is the exported form of the single-tier comparison
// used by the ablation benchmarks (DESIGN.md §5 item 2).
func SingleTierBucketSize(n, lambda int) int { return singleTierBucket(n, lambda) }
