package ohash

import (
	"snoopy/internal/crypt"
	"snoopy/internal/store"
)

// Builder amortizes the table-construction scratch memory across batches:
// a subORAM processes one batch per load balancer per epoch forever, and
// per-batch allocation of the multi-megabyte work arrays dominates GC
// pressure at high epoch rates. A Builder is NOT safe for concurrent use;
// give each goroutine its own.
type Builder struct {
	p Params

	work  *store.Requests
	spill *store.Requests
	work2 *store.Requests
	keep  []uint8
	over  []uint8
	keep2 []uint8
}

// NewBuilder creates a Builder with the given geometry parameters.
func NewBuilder(p Params) *Builder {
	if p.Z1 == 0 {
		p = DefaultParams()
	}
	return &Builder{p: p}
}

// ensure returns a zero-initialized request set of exactly n rows, reusing
// the previous allocation when the geometry matches.
func ensure(buf **store.Requests, n, block int) *store.Requests {
	b := *buf
	if b == nil || b.Len() != n || b.BlockSize != block {
		b = store.NewRequests(n, block)
		*buf = b
		return b
	}
	// Reset in place.
	for i := range b.Op {
		b.Op[i] = 0
		b.Key[i] = 0
		b.Sub[i] = 0
		b.Tag[i] = 0
		b.Aux[i] = 0
		b.Seq[i] = 0
		b.Client[i] = 0
	}
	for i := range b.Data {
		b.Data[i] = 0
	}
	return b
}

func ensureBits(buf *[]uint8, n int) []uint8 {
	if cap(*buf) < n {
		*buf = make([]uint8, n)
	}
	b := (*buf)[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// Build constructs a table like the package-level Build but reusing the
// Builder's scratch buffers. The returned Table owns fresh tier storage
// (it outlives the next Build call); only intermediate work arrays are
// recycled.
func (b *Builder) Build(reqs *store.Requests) (*Table, error) {
	return b.buildWithKeys(reqs, crypt.MustNewSipKey(), crypt.MustNewSipKey())
}

func (b *Builder) buildWithKeys(reqs *store.Requests, k1, k2 crypt.SipKey) (*Table, error) {
	n := reqs.Len()
	if n == 0 {
		return nil, errEmptyBatch
	}
	g := b.p.GeometryFor(n)
	t := &Table{Geom: g, K1: k1, K2: k2}

	work := ensure(&b.work, n+g.B1*g.Z1, reqs.BlockSize)
	work.Rec = b.p.Rec
	spill := ensure(&b.spill, n+g.B1*g.Z1, reqs.BlockSize)
	work2 := ensure(&b.work2, minInt(g.C2, n+g.B1*g.Z1)+g.B2*g.Z2, reqs.BlockSize)
	work2.Rec = b.p.Rec
	keep := ensureBits(&b.keep, work.Len())
	over := ensureBits(&b.over, work.Len())
	keep2 := ensureBits(&b.keep2, work2.Len())
	if err := buildInto(t, reqs, b.p, work, spill, work2, keep, over, keep2); err != nil {
		return nil, err
	}
	return t, nil
}
