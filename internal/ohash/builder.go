package ohash

import (
	"snoopy/internal/crypt"
	"snoopy/internal/store"
)

// Builder amortizes the table-construction memory across batches: a subORAM
// processes one batch per load balancer per epoch forever, and per-batch
// allocation of the multi-megabyte work arrays dominates GC pressure at high
// epoch rates. The Builder reuses everything — scratch arrays, the tier
// storage, and the Table struct itself — so a steady-state Build performs
// zero heap allocations once warmed up.
//
// Ownership contract: the Table returned by Build (including its tiers) is
// INVALIDATED by the next Build call. The caller must finish with it —
// including Extract, whose output is independently pooled — before building
// again. A Builder is NOT safe for concurrent use; give each goroutine its
// own.
type Builder struct {
	p Params

	work  *store.Requests
	spill *store.Requests
	work2 *store.Requests
	keep  []uint8
	over  []uint8
	keep2 []uint8

	tier1 *store.Requests
	tier2 *store.Requests
	tbl   Table
}

// NewBuilder creates a Builder with the given geometry parameters.
func NewBuilder(p Params) *Builder {
	if p.Z1 == 0 {
		rec, pool := p.Rec, p.Pool
		p = DefaultParams()
		p.Rec, p.Pool = rec, pool
	}
	return &Builder{p: p}
}

// ensure returns a zero-initialized request set of exactly n rows, reusing
// the previous allocation when the geometry matches.
func ensure(buf **store.Requests, n, block int) *store.Requests {
	b := *buf
	if b == nil || b.Len() != n || b.BlockSize != block {
		b = store.NewRequests(n, block)
		*buf = b
		return b
	}
	b.Reset()
	return b
}

func ensureBits(buf *[]uint8, n int) []uint8 {
	if cap(*buf) < n {
		*buf = make([]uint8, n)
	}
	b := (*buf)[:n]
	clear(b)
	return b
}

// Build constructs a table like the package-level Build but reusing the
// Builder's scratch buffers, tier storage, and Table struct. The returned
// table is valid only until the next Build call.
func (b *Builder) Build(reqs *store.Requests) (*Table, error) {
	return b.buildWithKeys(reqs, crypt.MustNewSipKey(), crypt.MustNewSipKey())
}

func (b *Builder) buildWithKeys(reqs *store.Requests, k1, k2 crypt.SipKey) (*Table, error) {
	n := reqs.Len()
	if n == 0 {
		return nil, errEmptyBatch
	}
	g := b.p.GeometryFor(n)
	b.tbl = Table{Geom: g, K1: k1, K2: k2, pool: b.p.pool()}
	t := &b.tbl
	t.Tier1 = ensure(&b.tier1, g.B1*g.Z1, reqs.BlockSize)
	t.Tier2 = ensure(&b.tier2, g.B2*g.Z2, reqs.BlockSize)

	work := ensure(&b.work, n+g.B1*g.Z1, reqs.BlockSize)
	work.Rec = b.p.Rec
	spill := ensure(&b.spill, n+g.B1*g.Z1, reqs.BlockSize)
	work2 := ensure(&b.work2, minInt(g.C2, n+g.B1*g.Z1)+g.B2*g.Z2, reqs.BlockSize)
	work2.Rec = b.p.Rec
	keep := ensureBits(&b.keep, work.Len())
	over := ensureBits(&b.over, work.Len())
	keep2 := ensureBits(&b.keep2, work2.Len())
	if err := buildInto(t, reqs, b.p, work, spill, work2, keep, over, keep2); err != nil {
		return nil, err
	}
	return t, nil
}
