// Package ohash implements the oblivious two-tier hash table of Chan et al.
// that Snoopy's subORAM uses to process request batches (paper §5). The
// table is built from a batch of distinct requests with an oblivious
// construction (two oblivious sorts plus compactions); afterwards, looking
// up an object id means scanning one full bucket in each tier, which hides
// the slot — and existence — of the match.
//
// Tier sizing follows the paper's approach: tier-1 buckets are small
// constants (overflow there is expected and harmless), and the overflow
// spills into tier 2, whose buckets are sized with the paper's own
// balls-into-bins bound (internal/batch, Theorem 3) so that tier-2 overflow
// is cryptographically negligible. Construction returns an error in the
// negligible event that a batch cannot be placed; callers treat that as the
// security-failure event of the analysis.
package ohash

import (
	"errors"
	"fmt"

	"snoopy/internal/arena"
	"snoopy/internal/batch"
	"snoopy/internal/crypt"
	"snoopy/internal/obliv"
	"snoopy/internal/store"
	"snoopy/internal/trace"
)

// TableDummyBit distinguishes table-padding dummy keys from load-balancer
// dummy keys (which carry only store.DummyKeyBit); padding keys sort after
// every batch key within a bucket.
const TableDummyBit = uint64(1) << 62

// ErrOverflow is returned when the batch cannot be placed — a probability-
// negligible event under the configured security parameter.
var ErrOverflow = errors.New("ohash: hash table overflow")

// Params configures table geometry.
type Params struct {
	// Z1 is the tier-1 bucket capacity.
	Z1 int
	// Mu1 is the mean tier-1 bucket load; B1 = ceil(n/Mu1).
	Mu1 int
	// OverflowDiv bounds tier-2 capacity: C2 = max(64, ceil(n/OverflowDiv)).
	OverflowDiv int
	// Lambda is the security parameter (bits) for tier-2 bucket sizing.
	Lambda int
	// Rec, when non-nil, records construction access traces (test-only).
	Rec *trace.Recorder
	// Pool supplies the working memory for table extraction (and, via
	// Builder, scan-worker table copies). Nil means arena.Default.
	Pool *arena.Pool
}

// pool returns the configured arena, defaulting to the process-wide one.
func (p Params) pool() *arena.Pool {
	if p.Pool != nil {
		return p.Pool
	}
	return arena.Default
}

// DefaultParams mirrors the deployment defaults: tier-1 buckets of 8 at mean
// load 4, tier-2 capacity n/8, λ=128.
func DefaultParams() Params {
	return Params{Z1: 8, Mu1: 4, OverflowDiv: 8, Lambda: 128}
}

// Geometry describes the concrete table dimensions for a batch of n.
type Geometry struct {
	N      int // batch size
	B1, Z1 int // tier-1 buckets × capacity
	B2, Z2 int // tier-2 buckets × capacity
	C2     int // tier-2 real-element capacity
}

// GeometryFor computes table dimensions for a batch of n requests.
func (p Params) GeometryFor(n int) Geometry {
	g := Geometry{N: n, Z1: p.Z1}
	g.B1 = (n + p.Mu1 - 1) / p.Mu1
	if g.B1 < 1 {
		g.B1 = 1
	}
	g.C2 = (n + p.OverflowDiv - 1) / p.OverflowDiv
	if g.C2 < 64 {
		g.C2 = 64
	}
	g.B2 = g.C2 // mean tier-2 load 1 minimizes the scanned bucket size
	g.Z2 = batch.Size(g.C2, g.B2, p.Lambda)
	return g
}

// SlotsScannedPerLookup returns Z1+Z2: the per-object scan cost.
func (g Geometry) SlotsScannedPerLookup() int { return g.Z1 + g.Z2 }

// Table is a constructed two-tier oblivious hash table over a batch of
// requests. Tier rows use Tag as the occupancy bit (1 = holds a batch
// request) and Sub as the bucket index.
type Table struct {
	Geom  Geometry
	K1    crypt.SipKey
	K2    crypt.SipKey
	Tier1 *store.Requests // Geom.B1 × Geom.Z1 rows, bucket-major
	Tier2 *store.Requests // Geom.B2 × Geom.Z2 rows, bucket-major

	// pool backs Extract's output (arena.Default when zero).
	pool *arena.Pool
}

// Build obliviously constructs a table from a batch of requests with
// distinct keys. The input is not modified. Fresh hash keys are sampled per
// call (paper §5: a new key for every batch so the attacker cannot link
// bucket choices across batches).
func Build(reqs *store.Requests, p Params) (*Table, error) {
	return BuildWithKeys(reqs, p, crypt.MustNewSipKey(), crypt.MustNewSipKey())
}

// BuildWithKeys is Build with caller-chosen hash keys. It exists so tests
// can fix the keys and verify that, keys held equal, the construction and
// scan traces are independent of request contents (the simulator argument
// of §B.5). Production code must use Build.
func BuildWithKeys(reqs *store.Requests, p Params, k1, k2 crypt.SipKey) (*Table, error) {
	n := reqs.Len()
	if n == 0 {
		return nil, errEmptyBatch
	}
	g := p.GeometryFor(n)
	t := &Table{Geom: g, K1: k1, K2: k2, pool: p.pool()}
	t.Tier1 = store.NewRequests(g.B1*g.Z1, reqs.BlockSize)
	t.Tier2 = store.NewRequests(g.B2*g.Z2, reqs.BlockSize)
	work := store.NewRequests(n+g.B1*g.Z1, reqs.BlockSize)
	work.Rec = p.Rec
	spill := store.NewRequests(work.Len(), reqs.BlockSize)
	work2 := store.NewRequests(minInt(g.C2, work.Len())+g.B2*g.Z2, reqs.BlockSize)
	work2.Rec = p.Rec
	if err := buildInto(t, reqs, p,
		work, spill, work2,
		make([]uint8, work.Len()), make([]uint8, work.Len()), make([]uint8, work2.Len())); err != nil {
		return nil, err
	}
	return t, nil
}

var errEmptyBatch = fmt.Errorf("ohash: empty batch")

// buildInto runs the oblivious construction using caller-provided scratch
// arrays (zeroed, correctly sized — see Builder) and caller-provided tier
// storage (t.Tier1/t.Tier2 pre-sized to the geometry; contents overwritten).
func buildInto(t *Table, reqs *store.Requests, p Params,
	work, spill, work2 *store.Requests, keep, over, keep2 []uint8) error {
	g := t.Geom
	n := reqs.Len()

	// ---- Tier 1 ----
	// work = batch rows tagged occupied, plus Z1 padding dummies per bucket.
	for i := 0; i < n; i++ {
		work.CopyRowPlain(i, reqs, i)
		work.Sub[i] = crypt.SipBucket(t.K1, work.Key[i], g.B1)
		work.Tag[i] = 1
	}
	d := n
	for b := 0; b < g.B1; b++ {
		for z := 0; z < g.Z1; z++ {
			work.SetRow(d, store.OpRead, padKey(uint64(d)), uint32(b), 0, 0, nil)
			d++
		}
	}
	obliv.Sort(store.BySubKey{Requests: work})

	markRuns(work.Sub, g.Z1, keep)
	for i := range over {
		over[i] = work.Tag[i] & obliv.Not(keep[i]) // occupied but not placed
	}

	copyColumns(spill, work)
	obliv.Compact(work, keep)
	t.Tier1.CopyPrefix(work)
	t.Tier1.Rec = p.Rec

	// ---- Tier 2 ----
	// Erase the non-overflow rows of the spill copy, then compact overflow
	// to the front and truncate to the public capacity C2.
	for i := 0; i < spill.Len(); i++ {
		notOv := obliv.Not(over[i])
		obliv.CondSetU64(notOv, &spill.Key[i], padKey(uint64(1<<40)+uint64(i)))
		obliv.CondSetU8(notOv, &spill.Tag[i], 0)
	}
	obliv.Compact(spill, over)
	// Any occupied row past C2 is lost: the negligible failure event.
	lost := 0
	for i := g.C2; i < spill.Len(); i++ {
		lost += int(spill.Tag[i])
	}
	if lost > 0 {
		return fmt.Errorf("%w: tier-2 capacity exceeded by %d", ErrOverflow, lost)
	}

	cand := spill.View(0, minInt(g.C2, spill.Len()))
	for i := 0; i < cand.Len(); i++ {
		work2.CopyRowPlain(i, cand, i)
		// Real overflow rows hash into [0,B2); erased rows go to the
		// sentinel bucket B2, selected branch-free.
		h := crypt.SipBucket(t.K2, work2.Key[i], g.B2)
		work2.Sub[i] = uint32(obliv.SelectU64(work2.Tag[i], uint64(g.B2), uint64(h)))
	}
	d = cand.Len()
	for b := 0; b < g.B2; b++ {
		for z := 0; z < g.Z2; z++ {
			work2.SetRow(d, store.OpRead, padKey(uint64(1<<41)+uint64(d)), uint32(b), 0, 0, nil)
			d++
		}
	}
	obliv.Sort(store.BySubKey{Requests: work2})

	markRuns(work2.Sub, g.Z2, keep2)
	lost = 0
	for i := range keep2 {
		// Rows in the sentinel bucket are never kept.
		inRange := obliv.LtU64(uint64(work2.Sub[i]), uint64(g.B2))
		keep2[i] &= inRange
		lost += int(work2.Tag[i] & obliv.Not(keep2[i]))
	}
	if lost > 0 {
		return fmt.Errorf("%w: tier-2 bucket exceeded by %d", ErrOverflow, lost)
	}
	obliv.Compact(work2, keep2)
	t.Tier2.CopyPrefix(work2)
	t.Tier2.Rec = p.Rec
	return nil
}

// copyColumns copies src into dst (equal geometry) without allocating.
func copyColumns(dst, src *store.Requests) {
	copy(dst.Op, src.Op)
	copy(dst.Key, src.Key)
	copy(dst.Sub, src.Sub)
	copy(dst.Tag, src.Tag)
	copy(dst.Aux, src.Aux)
	copy(dst.Seq, src.Seq)
	copy(dst.Client, src.Client)
	copy(dst.Data, src.Data)
}

// Buckets returns the row ranges [lo1,hi1) in Tier1 and [lo2,hi2) in Tier2
// that a lookup of id must scan in full. The bucket indices are a function
// of the per-batch secret hash keys and id; revealing them is simulatable
// from public information because keys are fresh and each id is looked up
// at most once per batch (paper §5).
func (t *Table) Buckets(id uint64) (lo1, hi1, lo2, hi2 int) {
	b1 := int(crypt.SipBucket(t.K1, id, t.Geom.B1))
	b2 := int(crypt.SipBucket(t.K2, id, t.Geom.B2))
	return b1 * t.Geom.Z1, (b1 + 1) * t.Geom.Z1, b2 * t.Geom.Z2, (b2 + 1) * t.Geom.Z2
}

// Extract obliviously compacts the occupied slots of both tiers to recover
// exactly n rows — the batch requests, now carrying whatever responses the
// subORAM scan deposited in them. The table is consumed. The result is drawn
// from the table's arena pool; the caller owns it and may release it.
func (t *Table) Extract() *store.Requests {
	pool := t.pool
	if pool == nil {
		pool = arena.Default
	}
	n1, n2 := t.Tier1.Len(), t.Tier2.Len()
	all := pool.GetRequests(n1+n2, t.Tier1.BlockSize)
	all.CopyRowsPlain(0, t.Tier1)
	all.CopyRowsPlain(n1, t.Tier2)
	all.Rec = t.Tier1.Rec
	marks := pool.GetBits(n1 + n2)
	copy(marks, all.Tag)
	obliv.Compact(all, marks)
	pool.PutBits(marks)
	all.Resize(t.Geom.N)
	return all
}

// markRuns sets keep[i] = 1 iff the rank of row i within its run of equal
// Sub values is below z. Branch-free: run boundaries and ranks are secret.
func markRuns(sub []uint32, z int, keep []uint8) {
	var cnt uint64
	prev := ^uint64(0)
	for i := range sub {
		s := uint64(sub[i])
		newRun := obliv.NeqU64(s, prev)
		cnt = obliv.SelectU64(newRun, cnt, 0)
		keep[i] = obliv.LtU64(cnt, uint64(z))
		cnt++
		prev = s
	}
}

func padKey(i uint64) uint64 { return store.DummyKeyBit | TableDummyBit | i }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
