package ohash

import (
	"fmt"

	"snoopy/internal/crypt"
	"snoopy/internal/obliv"
	"snoopy/internal/store"
)

// SingleTierTable is the Signal-contact-discovery-style oblivious hash
// table the paper contrasts with (§5): one tier whose construction places
// every request with a quadratic oblivious pass — "their hash table
// construction takes O(n²) time for n contacts ... prohibitively expensive
// for batches with thousands of requests" — and whose buckets must be
// sized for negligible overflow on their own, making them ~10× larger
// than the two-tier design's. Kept for the ablation benchmarks that
// reproduce both claims.
type SingleTierTable struct {
	B, Z int
	K    crypt.SipKey
	Rows *store.Requests // B × Z, bucket-major; Tag = occupancy
}

// BuildSingleTierQuadratic constructs the table with the quadratic
// oblivious placement: for every bucket slot, a full pass over the batch
// conditionally moves the next matching request in. Total work Θ(B·Z·n).
func BuildSingleTierQuadratic(reqs *store.Requests, lambda int) (*SingleTierTable, error) {
	n := reqs.Len()
	if n == 0 {
		return nil, fmt.Errorf("ohash: empty batch")
	}
	// Mean load 2 with λ-negligible overflow, the single-tier sizing the
	// bucket-size comparison uses.
	b := (n + 1) / 2
	if b < 1 {
		b = 1
	}
	z := singleTierBucket(n, lambda)
	t := &SingleTierTable{B: b, Z: z, K: crypt.MustNewSipKey()}
	t.Rows = store.NewRequests(b*z, reqs.BlockSize)
	for i := 0; i < t.Rows.Len(); i++ {
		t.Rows.Key[i] = padKey(uint64(1<<42) + uint64(i))
	}

	// Work over a consumable copy of the batch: placed requests are marked
	// so they move only once. All accesses are full scans.
	src := reqs.Clone()
	placed := make([]uint8, n)
	buckets := make([]uint32, n)
	for j := 0; j < n; j++ {
		buckets[j] = crypt.SipBucket(t.K, src.Key[j], b)
	}
	lost := 0
	for bkt := 0; bkt < b; bkt++ {
		for slot := 0; slot < z; slot++ {
			row := bkt*z + slot
			// One oblivious pass over the whole batch: move the first
			// unplaced request that hashes here into this slot.
			var taken uint8
			for j := 0; j < n; j++ {
				here := obliv.EqU64(uint64(buckets[j]), uint64(bkt))
				c := here & obliv.Not(placed[j]) & obliv.Not(taken)
				t.Rows.OCopyRowFrom(c, row, src, j)
				obliv.CondSetU8(c, &t.Rows.Tag[row], 1)
				obliv.CondSetU8(c, &placed[j], 1)
				taken |= c
			}
		}
	}
	for j := 0; j < n; j++ {
		lost += int(obliv.Not(placed[j]))
	}
	if lost > 0 {
		return nil, fmt.Errorf("%w: single-tier bucket exceeded by %d", ErrOverflow, lost)
	}
	return t, nil
}

// Bucket returns the row range a lookup of id must scan.
func (t *SingleTierTable) Bucket(id uint64) (lo, hi int) {
	b := int(crypt.SipBucket(t.K, id, t.B))
	return b * t.Z, (b + 1) * t.Z
}
