package batch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLambertW0KnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0},
		{math.E, 1},
		{1, 0.5671432904097838},
		{2 * math.E * math.E, 2},
		{-1 / math.E, -1},
		{-0.1, -0.11183255915896297},
		{-0.3, -0.489402227180215},
		{10, 1.7455280027406994},
		{1e6, 11.383358086140052},
	}
	for _, c := range cases {
		got, err := LambertW0(c.x)
		if err != nil {
			t.Fatalf("LambertW0(%g): %v", c.x, err)
		}
		if math.Abs(got-c.want) > 1e-9*(1+math.Abs(c.want)) {
			t.Errorf("LambertW0(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestLambertW0Inverse(t *testing.T) {
	// W0(w e^w) == w for w >= -1.
	f := func(raw float64) bool {
		w := math.Mod(math.Abs(raw), 20) - 1 // w in [-1, 19)
		x := w * math.Exp(w)
		got, err := LambertW0(x)
		if err != nil {
			return false
		}
		return math.Abs(got-w) < 1e-8*(1+math.Abs(w))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLambertW0Domain(t *testing.T) {
	if _, err := LambertW0(-0.5); err == nil {
		t.Fatal("expected domain error below -1/e")
	}
	if w, err := LambertW0(-1/math.E - 1e-14); err != nil || math.Abs(w+1) > 1e-9 {
		t.Fatalf("tiny slack below branch point should clamp to -1: %v %v", w, err)
	}
}

func TestSizeBasicProperties(t *testing.T) {
	// Batch size bounded by R; at least the mean; monotone in R.
	for _, s := range []int{2, 5, 10, 20} {
		prev := 0
		for _, r := range []int{1, 10, 100, 1000, 5000, 10000, 100000} {
			b := Size(r, s, 128)
			if b > r {
				t.Fatalf("S=%d R=%d: batch %d exceeds R", s, r, b)
			}
			if float64(b) < float64(r)/float64(s) {
				t.Fatalf("S=%d R=%d: batch %d below mean", s, r, b)
			}
			if b < prev {
				t.Fatalf("S=%d: batch size not monotone in R (%d after %d)", s, b, prev)
			}
			prev = b
		}
	}
}

func TestSizeSingleSubORAM(t *testing.T) {
	if got := Size(1234, 1, 128); got != 1234 {
		t.Fatalf("S=1 must get the whole batch, got %d", got)
	}
}

func TestSizeZeroRequests(t *testing.T) {
	if got := Size(0, 4, 128); got != 0 {
		t.Fatalf("R=0 should yield 0, got %d", got)
	}
}

// TestSizeSatisfiesChernoffBound verifies the closed form against the raw
// bound it was derived from: the overflow probability at B = Size(R,S,λ)
// must be at most 2^−λ.
func TestSizeSatisfiesChernoffBound(t *testing.T) {
	for _, lambda := range []int{40, 80, 128} {
		for _, s := range []int{2, 3, 10, 20, 50} {
			for _, r := range []int{100, 1000, 10000, 1000000} {
				b := Size(r, s, lambda)
				if b == r {
					continue // zero overflow probability by construction
				}
				bound := OverflowBound(r, s, b)
				limit := math.Pow(2, -float64(lambda))
				if bound > limit*1.0000001 {
					t.Errorf("λ=%d S=%d R=%d B=%d: bound %.3g > 2^-λ %.3g",
						lambda, s, r, b, bound, limit)
				}
			}
		}
	}
}

// TestSizeTight checks the bound is not absurdly loose: one fewer slot per
// batch should violate the Chernoff bound in the high-throughput regime
// (otherwise the formula is wasting dummy capacity).
func TestSizeTight(t *testing.T) {
	const lambda = 128
	for _, s := range []int{5, 20} {
		r := 100000
		b := Size(r, s, lambda)
		if b == r {
			t.Fatalf("expected sub-R batch in high-throughput regime")
		}
		// Allow a couple of slots of slack for the ceil.
		if OverflowBound(r, s, b-3) <= math.Pow(2, -float64(lambda)) {
			t.Errorf("S=%d R=%d: batch %d looks loose (b-3 still satisfies bound)", s, r, b)
		}
	}
}

// TestEmpiricalNoOverflow plays the actual balls-into-bins game at a
// moderate λ and confirms no batch ever overflows.
func TestEmpiricalNoOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const lambda = 30
	for _, cfg := range []struct{ r, s int }{{1000, 4}, {5000, 10}, {20000, 16}} {
		b := Size(cfg.r, cfg.s, lambda)
		for trial := 0; trial < 200; trial++ {
			counts := make([]int, cfg.s)
			for i := 0; i < cfg.r; i++ {
				counts[rng.Intn(cfg.s)]++
			}
			for sub, c := range counts {
				if c > b {
					t.Fatalf("R=%d S=%d λ=%d: subORAM %d got %d > batch %d",
						cfg.r, cfg.s, lambda, sub, c, b)
				}
			}
		}
	}
}

func TestDummyOverheadShrinksWithLoad(t *testing.T) {
	// Paper Fig. 3: overhead decreases as R grows, increases with S.
	for _, s := range []int{2, 10, 20} {
		prev := math.Inf(1)
		for _, r := range []int{500, 1000, 2000, 5000, 10000} {
			o := DummyOverhead(r, s, 128)
			if o > prev+1e-9 {
				t.Errorf("S=%d: overhead grew from %.3f to %.3f as R rose to %d", s, prev, o, r)
			}
			prev = o
		}
	}
	if DummyOverhead(10000, 2, 128) >= DummyOverhead(10000, 20, 128) {
		t.Error("overhead should increase with subORAM count")
	}
}

func TestCapacity(t *testing.T) {
	// Paper Fig. 4: capacity grows with S but sublinearly under security;
	// λ<0 (no security) is exactly S·maxBatch.
	const maxBatch = 1000
	if got := Capacity(10, -1, maxBatch); got != 10*maxBatch {
		t.Fatalf("insecure capacity should be S·maxBatch, got %d", got)
	}
	prev := 0
	for _, s := range []int{1, 2, 5, 10, 20} {
		c := Capacity(s, 128, maxBatch)
		if c <= prev {
			t.Fatalf("capacity should grow with S: S=%d gave %d after %d", s, c, prev)
		}
		if c > s*maxBatch {
			t.Fatalf("secure capacity exceeds insecure ceiling: S=%d c=%d", s, c)
		}
		// Verify the search result is consistent with Size.
		if Size(c, s, 128) > maxBatch {
			t.Fatalf("S=%d: capacity %d yields oversized batch", s, c)
		}
		if Size(c+1, s, 128) <= maxBatch {
			t.Fatalf("S=%d: capacity %d not maximal", s, c)
		}
		prev = c
	}
	// Sublinearity: secure capacity at S=20 strictly below 20·maxBatch.
	if Capacity(20, 128, maxBatch) >= 20*maxBatch {
		t.Error("secure capacity should be strictly sublinear")
	}
}

func TestOverflowBoundEdges(t *testing.T) {
	if OverflowBound(100, 4, 100) != 0 {
		t.Error("b >= r must have zero overflow probability")
	}
	if OverflowBound(100, 4, 10) != 1 {
		t.Error("b below the mean must clamp to 1")
	}
}

// TestLambertW0DenseSweep verifies the inverse identity on a dense grid —
// including the x ≈ 1 region where a naive log-based initial guess
// diverges to the wrong branch (a bug this test pins down; it once made
// Size() return batch sizes below the mean, causing request drops).
func TestLambertW0DenseSweep(t *testing.T) {
	for w := -1.0; w <= 20; w += 0.001 {
		x := w * math.Exp(w)
		got, err := LambertW0(x)
		if err != nil {
			t.Fatalf("W0(%g): %v", x, err)
		}
		if math.IsNaN(got) || math.Abs(got-w) > 1e-6*(1+math.Abs(w)) {
			t.Fatalf("W0(%g) = %g, want %g", x, got, w)
		}
	}
	// The exact trouble spots.
	for _, x := range []float64{0.999999, 1.0, 1.0000001, 1.0001, 1.01, 1.0257, 2.99, 3.0, 3.01} {
		w, err := LambertW0(x)
		if err != nil {
			t.Fatal(err)
		}
		if resid := w*math.Exp(w) - x; math.Abs(resid) > 1e-9*(1+x) {
			t.Fatalf("W0(%g) = %g: residual %g", x, w, resid)
		}
	}
}

// TestSizeDenseSanity checks, densely over R, the two properties request
// safety rests on: the batch size never falls below the per-subORAM mean,
// and it is monotone in R.
func TestSizeDenseSanity(t *testing.T) {
	for _, lambda := range []int{24, 64, 128} {
		for _, s := range []int{2, 3, 7, 16} {
			prev := 0
			for r := 1; r <= 3000; r++ {
				b := Size(r, s, lambda)
				if float64(b) < float64(r)/float64(s) {
					t.Fatalf("λ=%d S=%d R=%d: batch %d below mean %.1f", lambda, s, r, b, float64(r)/float64(s))
				}
				if b < prev {
					t.Fatalf("λ=%d S=%d R=%d: batch %d < previous %d (non-monotone)", lambda, s, r, b, prev)
				}
				if b > r {
					t.Fatalf("λ=%d S=%d R=%d: batch %d exceeds R", lambda, s, r, b)
				}
				prev = b
			}
		}
	}
}
