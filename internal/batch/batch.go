// Package batch implements Theorem 3 of the Snoopy paper: the public
// batch-size function f(R,S) that guarantees, for R distinct requests hashed
// uniformly across S subORAMs, that the probability any subORAM receives
// more than f(R,S) requests is negligible in the security parameter λ.
//
// The bound is a Chernoff/union-bound argument solved in closed form with
// branch 0 of the Lambert W function:
//
//	μ = R/S,  γ = ln(S · 2^λ)
//	f(R,S) = min(R, μ · exp(W₀(e⁻¹(γ/μ − 1)) + 1))
//
// The package also provides the derived quantities the paper plots: dummy
// overhead (Fig. 3) and per-epoch real-request capacity (Fig. 4), plus the
// raw Chernoff overflow bound used by tests to validate the closed form.
package batch

import (
	"fmt"
	"math"
)

// Size returns the batch size f(R,S) for security parameter lambda bits.
// Every subORAM receives exactly this many (deduplicated, padded) requests.
// It panics if s <= 0; r == 0 yields 0.
func Size(r, s, lambda int) int {
	if s <= 0 {
		panic("batch: number of subORAMs must be positive")
	}
	if r <= 0 {
		return 0
	}
	if s == 1 {
		return r
	}
	mu := float64(r) / float64(s)
	gamma := math.Log(float64(s)) + float64(lambda)*math.Ln2
	x := math.Exp(-1) * (gamma/mu - 1)
	w, err := LambertW0(x)
	if err != nil {
		// x < -1/e cannot occur: gamma > 0 implies x > -1/e.
		panic(fmt.Sprintf("batch: lambert domain error: %v", err))
	}
	b := mu * math.Exp(w+1)
	bi := int(math.Ceil(b))
	if bi > r || bi < 0 {
		return r
	}
	return bi
}

// DummyOverhead returns the fraction of extra (dummy) requests the system
// processes: (S·f(R,S) − R) / R. This is the y-axis of paper Fig. 3.
func DummyOverhead(r, s, lambda int) float64 {
	if r <= 0 {
		return 0
	}
	b := Size(r, s, lambda)
	return float64(s*b-r) / float64(r)
}

// Capacity returns the largest number of real requests R such that
// f(R,S) <= maxBatch — the per-epoch real-request capacity of a deployment
// where each subORAM can process at most maxBatch requests per epoch. This
// is the y-axis of paper Fig. 4 ("assuming ≤1K requests per subORAM per
// epoch"). lambda < 0 means no security (capacity = S·maxBatch).
func Capacity(s, lambda, maxBatch int) int {
	if s <= 0 || maxBatch <= 0 {
		return 0
	}
	if lambda < 0 {
		return s * maxBatch
	}
	// Size(·, s, lambda) is nondecreasing in r, so binary search works.
	lo, hi := 0, s*maxBatch
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if Size(mid, s, lambda) <= maxBatch {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// OverflowBound returns the Chernoff+union upper bound on the probability
// that any of the s subORAMs receives more than b of the r requests:
//
//	S · exp(−μ((1+δ)ln(1+δ) − δ)),  δ = b/μ − 1.
//
// Used by tests to confirm that Size() drives this below 2^−λ.
func OverflowBound(r, s, b int) float64 {
	if b >= r {
		return 0 // a subORAM can never see more than r requests
	}
	if r <= 0 || s <= 0 || b <= 0 {
		return 1
	}
	mu := float64(r) / float64(s)
	delta := float64(b)/mu - 1
	if delta <= 0 {
		return 1
	}
	exponent := -mu * ((1+delta)*math.Log(1+delta) - delta)
	return math.Min(1, float64(s)*math.Exp(exponent))
}

// LambertW0 evaluates branch 0 of the Lambert W function — the inverse of
// w·e^w on [−1/e, ∞) — by Halley iteration from a piecewise initial guess.
// It returns an error for x < −1/e (outside the real domain of W₀).
func LambertW0(x float64) (float64, error) {
	const minX = -1.0 / math.E
	if math.IsNaN(x) {
		return 0, fmt.Errorf("batch: LambertW0(NaN)")
	}
	if x < minX {
		// Allow for tiny negative slack from floating-point rounding.
		if x > minX-1e-12 {
			return -1, nil
		}
		return 0, fmt.Errorf("batch: LambertW0(%g) below branch point −1/e", x)
	}
	if x == 0 {
		return 0, nil
	}

	var w float64
	switch {
	case x < -0.25:
		// Series around the branch point: w = −1 + p − p²/3 + 11p³/72,
		// p = sqrt(2(e·x + 1)).
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3 + 11*p*p*p/72
	case x < 3:
		// w = x/(1+x) is an adequate Halley start throughout (−0.25, 3).
		// (A log-based guess must NOT be used near x = 1: ln(ln x) → −∞
		// there and sends the iteration to the wrong branch.)
		w = x / (1 + x)
	default:
		l1 := math.Log(x)
		l2 := math.Log(l1)
		w = l1 - l2 + l2/l1
	}

	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if f == 0 {
			break
		}
		// Halley's method.
		denom := ew*(w+1) - (w+2)*f/(2*w+2)
		dw := f / denom
		w -= dw
		if w < -1 {
			w = -1 // stay on branch 0
		}
		if math.Abs(dw) <= 1e-14*(1+math.Abs(w)) {
			break
		}
	}
	// Batch sizing is security-critical: verify the root and fall back to
	// bisection if the iteration misbehaved (w·e^w is strictly increasing
	// on [−1, ∞), so bisection always succeeds on branch 0).
	if resid := w*math.Exp(w) - x; math.IsNaN(w) || w < -1 || math.Abs(resid) > 1e-9*(1+math.Abs(x)) {
		w = bisectW0(x)
	}
	return w, nil
}

// bisectW0 solves w·e^w = x for w ≥ −1 by bisection.
func bisectW0(x float64) float64 {
	lo, hi := -1.0, 1.0
	for hi*math.Exp(hi) < x {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid*math.Exp(mid) < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
