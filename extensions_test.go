package snoopy_test

import (
	"bytes"
	"testing"
	"time"

	"snoopy"
)

func TestPublicACL(t *testing.T) {
	st, err := snoopy.Open(snoopy.Config{SubORAMs: 2, Lambda: 32, Epoch: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(map[uint64][]byte{10: []byte("secret")}); err != nil {
		t.Fatal(err)
	}
	if err := st.EnableACL([]snoopy.ACLRule{
		{User: 7, Object: 10, Op: snoopy.OpRead},
	}, 1); err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.ReadAs(7, 10)
	if err != nil || !ok || !bytes.HasPrefix(v, []byte("secret")) {
		t.Fatalf("granted read: %q %v %v", v, ok, err)
	}
	if _, ok, _ := st.ReadAs(8, 10); ok {
		t.Fatal("ungranted user read succeeded")
	}
	if _, ok, _ := st.WriteAs(7, 10, []byte("x")); ok {
		t.Fatal("read-only grant allowed write")
	}
}

func TestPublicReplicatedDeployment(t *testing.T) {
	var subs []snoopy.SubORAM
	for i := 0; i < 2; i++ {
		g, err := snoopy.NewReplicatedSubORAM(160, 1, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, g)
	}
	st, err := snoopy.OpenWithSubORAMs(snoopy.Config{
		Lambda: 32, Epoch: 2 * time.Millisecond,
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(map[uint64][]byte{1: []byte("replicated")}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Write(1, []byte("v2")); err != nil || !ok {
		t.Fatal(err, ok)
	}
	v, ok, err := st.Read(1)
	if err != nil || !ok || !bytes.HasPrefix(v, []byte("v2")) {
		t.Fatalf("replicated round trip: %q %v %v", v, ok, err)
	}
}

func TestPublicPIRDeployment(t *testing.T) {
	subs := []snoopy.SubORAM{snoopy.NewPIRSubORAM(160), snoopy.NewPIRSubORAM(160)}
	st, err := snoopy.OpenWithSubORAMs(snoopy.Config{
		Lambda: 32, Epoch: 2 * time.Millisecond,
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(map[uint64][]byte{5: []byte("pir-value")}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Read(5)
	if err != nil || !ok || !bytes.HasPrefix(v, []byte("pir-value")) {
		t.Fatalf("pir read: %q %v %v", v, ok, err)
	}
}

func TestPlanDeploymentForBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs calibration")
	}
	p, err := snoopy.PlanDeploymentForBudget(10_000, 160, 50, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if p.CostPerMonth > 5000 || p.AvgLatency <= 0 {
		t.Fatalf("bad budget plan: %+v", p)
	}
}

func TestDoBatch(t *testing.T) {
	st, err := snoopy.Open(snoopy.Config{SubORAMs: 2, Lambda: 32, Epoch: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(map[uint64][]byte{1: []byte("a"), 2: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	res := st.Do([]snoopy.Op{
		{Key: 1},
		{Write: true, Key: 2, Value: []byte("B")},
		{Key: 999},
	})
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Err != nil || !res[0].Found || res[0].Value[0] != 'a' {
		t.Fatalf("read result wrong: %+v", res[0])
	}
	if res[1].Err != nil || !res[1].Found || res[1].Value[0] != 'b' {
		t.Fatalf("write result should carry epoch-start value: %+v", res[1])
	}
	if res[2].Found {
		t.Fatal("absent key found")
	}
	res = st.Do([]snoopy.Op{{Key: 2}})
	if res[0].Value[0] != 'B' {
		t.Fatal("batched write lost")
	}
}
