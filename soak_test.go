package snoopy_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"snoopy"
	"snoopy/internal/metrics"
	"snoopy/internal/workload"
)

// TestBurstySoak replays a bursty arrival schedule (paper §4.1: "R is not
// fixed across epochs (requests can be bursty)") against a live pipelined
// deployment, checking that every request completes correctly, batch
// sizing absorbs the bursts without drops, and latency stays bounded.
func TestBurstySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	const objects = 4096
	st, err := snoopy.Open(snoopy.Config{
		BlockSize: 32, LoadBalancers: 2, SubORAMs: 3, Lambda: 64,
		Epoch: 10 * time.Millisecond, Pipeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ids := make([]uint64, objects)
	data := make([]byte, objects*32)
	for i := range ids {
		ids[i] = uint64(i)
		copy(data[i*32:], fmt.Sprintf("s%d", i))
	}
	if err := st.LoadSlices(ids, data); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	arrivals := workload.Arrivals(rng, []workload.Burst{
		{Rate: 400, Seconds: 0.5},  // steady
		{Rate: 2500, Seconds: 0.3}, // burst
		{Rate: 0, Seconds: 0.2},    // silence
		{Rate: 800, Seconds: 0.5},  // recovery
	})
	gen := workload.Mix(workload.Zipf(objects, 1.2), 0.3)

	var lat metrics.Latencies
	var wg sync.WaitGroup
	errs := make(chan error, len(arrivals))
	start := time.Now()
	var genMu sync.Mutex
	for _, at := range arrivals {
		at := at
		wg.Add(1)
		go func() {
			defer wg.Done()
			if d := time.Duration(at*1e9) - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			genMu.Lock()
			op := gen(rng)
			genMu.Unlock()
			t0 := time.Now()
			if op.Write {
				if _, _, err := st.Write(op.Key, []byte("w")); err != nil {
					errs <- err
					return
				}
			} else {
				v, found, err := st.Read(op.Key)
				if err != nil {
					errs <- err
					return
				}
				if !found || !(bytes.HasPrefix(v, []byte("s")) || v[0] == 'w') {
					errs <- fmt.Errorf("key %d: found=%v bad value %q", op.Key, found, v)
					return
				}
			}
			lat.Add(time.Since(t0))
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if lat.Count() < len(arrivals)*9/10 {
		t.Fatalf("only %d/%d requests completed", lat.Count(), len(arrivals))
	}
	if st.Stats().Dropped != 0 {
		t.Fatalf("burst caused %d drops — Theorem 3 sizing failed", st.Stats().Dropped)
	}
	// Latency bounded: generous cap (single-core host runs everything).
	if p99 := lat.Percentile(99); p99 > 5*time.Second {
		t.Fatalf("p99 latency %v under burst", p99)
	}
	t.Logf("soak: %d requests, %s", lat.Count(), lat.String())
}

// TestCrashRecoverySoak runs write rounds against a durable (DataDir)
// deployment, hard-stops it mid-stream — the store is abandoned without
// Close, so only the per-batch durability path has run — and reopens the
// directory, verifying every acknowledged write is readable at its last
// acknowledged version and no unacknowledged write surfaces.
func TestCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	const (
		objects = 512
		block   = 32
		rounds  = 6
	)
	dataDir := t.TempDir()
	value := func(id uint64, round int) []byte {
		v := make([]byte, block)
		copy(v, fmt.Sprintf("r%d-%d", round, id))
		return v
	}
	// Manual epochs: a write is acknowledged exactly when its Flush-driven
	// epoch completes, so the test knows the precise acked set at "crash".
	st, err := snoopy.Open(snoopy.Config{
		BlockSize: block, LoadBalancers: 2, SubORAMs: 3, Lambda: 64,
		DataDir: dataDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered() {
		t.Fatal("fresh DataDir reported recovered")
	}
	ids := make([]uint64, objects)
	data := make([]byte, objects*block)
	for i := range ids {
		ids[i] = uint64(i)
		copy(data[i*block:], value(uint64(i), 0))
	}
	if err := st.LoadSlices(ids, data); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	acked := make(map[uint64]int) // id → last acknowledged round
	for r := 1; r <= rounds; r++ {
		waits := map[uint64]func() ([]byte, bool, error){}
		for i := 0; i < 64; i++ {
			id := uint64(rng.Intn(objects))
			w, err := st.WriteAsync(id, value(id, r))
			if err != nil {
				t.Fatal(err)
			}
			waits[id] = w
		}
		st.Flush()
		for id, w := range waits {
			if _, ok, err := w(); err != nil || !ok {
				t.Fatalf("round %d write to %d: ok=%v err=%v", r, id, ok, err)
			}
			acked[id] = r
		}
	}
	// Mid-stream hard stop: submit one more round but never flush it. These
	// writes were never acknowledged and must not survive the crash.
	for i := 0; i < 64; i++ {
		id := uint64(rng.Intn(objects))
		if _, err := st.WriteAsync(id, value(id, 99)); err != nil {
			t.Fatal(err)
		}
	}
	// No st.Close(): the process "dies" with the store mid-stream.

	re, err := snoopy.Open(snoopy.Config{
		BlockSize: block, LoadBalancers: 2, SubORAMs: 3, Lambda: 64,
		Epoch: 5 * time.Millisecond, DataDir: dataDir,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if !re.Recovered() {
		t.Fatal("reopen of populated DataDir did not recover")
	}
	ops := make([]snoopy.Op, objects)
	for id := range ops {
		ops[id] = snoopy.Op{Key: uint64(id)}
	}
	for id, res := range re.Do(ops) {
		if res.Err != nil || !res.Found {
			t.Fatalf("Read(%d) after crash: found=%v err=%v", id, res.Found, res.Err)
		}
		want := value(uint64(id), acked[uint64(id)]) // round 0 = load-time value
		if !bytes.Equal(res.Value, want) {
			t.Fatalf("Read(%d) after crash = %q, want %q", id, res.Value, want)
		}
	}
	// The recovered store must keep acknowledging durable writes.
	if _, ok, err := re.Write(3, value(3, 7)); err != nil || !ok {
		t.Fatalf("post-recovery write: ok=%v err=%v", ok, err)
	}
	got, ok, err := re.Read(3)
	if err != nil || !ok || !bytes.Equal(got, value(3, 7)) {
		t.Fatalf("post-recovery read = %q ok=%v err=%v", got, ok, err)
	}
}
