package snoopy_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"snoopy"
	"snoopy/internal/metrics"
	"snoopy/internal/workload"
)

// TestBurstySoak replays a bursty arrival schedule (paper §4.1: "R is not
// fixed across epochs (requests can be bursty)") against a live pipelined
// deployment, checking that every request completes correctly, batch
// sizing absorbs the bursts without drops, and latency stays bounded.
func TestBurstySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	const objects = 4096
	st, err := snoopy.Open(snoopy.Config{
		BlockSize: 32, LoadBalancers: 2, SubORAMs: 3, Lambda: 64,
		Epoch: 10 * time.Millisecond, Pipeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ids := make([]uint64, objects)
	data := make([]byte, objects*32)
	for i := range ids {
		ids[i] = uint64(i)
		copy(data[i*32:], fmt.Sprintf("s%d", i))
	}
	if err := st.LoadSlices(ids, data); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	arrivals := workload.Arrivals(rng, []workload.Burst{
		{Rate: 400, Seconds: 0.5},  // steady
		{Rate: 2500, Seconds: 0.3}, // burst
		{Rate: 0, Seconds: 0.2},    // silence
		{Rate: 800, Seconds: 0.5},  // recovery
	})
	gen := workload.Mix(workload.Zipf(objects, 1.2), 0.3)

	var lat metrics.Latencies
	var wg sync.WaitGroup
	errs := make(chan error, len(arrivals))
	start := time.Now()
	var genMu sync.Mutex
	for _, at := range arrivals {
		at := at
		wg.Add(1)
		go func() {
			defer wg.Done()
			if d := time.Duration(at*1e9) - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			genMu.Lock()
			op := gen(rng)
			genMu.Unlock()
			t0 := time.Now()
			if op.Write {
				if _, _, err := st.Write(op.Key, []byte("w")); err != nil {
					errs <- err
					return
				}
			} else {
				v, found, err := st.Read(op.Key)
				if err != nil {
					errs <- err
					return
				}
				if !found || !(bytes.HasPrefix(v, []byte("s")) || v[0] == 'w') {
					errs <- fmt.Errorf("key %d: found=%v bad value %q", op.Key, found, v)
					return
				}
			}
			lat.Add(time.Since(t0))
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if lat.Count() < len(arrivals)*9/10 {
		t.Fatalf("only %d/%d requests completed", lat.Count(), len(arrivals))
	}
	if st.Stats().Dropped != 0 {
		t.Fatalf("burst caused %d drops — Theorem 3 sizing failed", st.Stats().Dropped)
	}
	// Latency bounded: generous cap (single-core host runs everything).
	if p99 := lat.Percentile(99); p99 > 5*time.Second {
		t.Fatalf("p99 latency %v under burst", p99)
	}
	t.Logf("soak: %d requests, %s", lat.Count(), lat.String())
}
